"""Elementary graph generators used by workloads and tests.

The list/chain structure is the worst case of the paper's first
experiment (Figure 4): query ``i`` coordinates with query ``i+1`` and
the last query coordinates with nobody, giving a different coordinating
set per suffix and the largest possible number of database queries.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import GraphError
from ..graphs import DiGraph


def list_digraph(nodes: int) -> DiGraph:
    """The chain ``0 → 1 → ... → n-1`` (Figure 4's structure)."""
    if nodes < 1:
        raise GraphError("list graph needs at least one node")
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    for i in range(nodes - 1):
        graph.add_edge(i, i + 1)
    return graph


def ring_digraph(nodes: int) -> DiGraph:
    """The directed cycle on ``nodes`` vertices (one big SCC — the
    fully *unique* coordination structure)."""
    if nodes < 1:
        raise GraphError("ring graph needs at least one node")
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    for i in range(nodes):
        graph.add_edge(i, (i + 1) % nodes)
    return graph


def star_digraph(nodes: int) -> DiGraph:
    """Node 0 points at every other node (one hub query that wants to
    coordinate with everyone)."""
    if nodes < 1:
        raise GraphError("star graph needs at least one node")
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    for i in range(1, nodes):
        graph.add_edge(0, i)
    return graph


def complete_digraph(nodes: int) -> DiGraph:
    """Every ordered pair is an edge (the complete friendship graph of
    the paper's Consistent-algorithm experiments)."""
    if nodes < 1:
        raise GraphError("complete graph needs at least one node")
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    for i in range(nodes):
        for j in range(nodes):
            if i != j:
                graph.add_edge(i, j)
    return graph


def gnp_digraph(
    nodes: int,
    probability: float,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> DiGraph:
    """Directed Erdős–Rényi ``G(n, p)``."""
    if nodes < 1:
        raise GraphError("G(n,p) needs at least one node")
    if not 0.0 <= probability <= 1.0:
        raise GraphError("probability must be in [0, 1]")
    generator = rng if rng is not None else random.Random(seed)
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    for i in range(nodes):
        for j in range(nodes):
            if i != j and generator.random() < probability:
                graph.add_edge(i, j)
    return graph
