"""Cross-algorithm integration tests.

The algorithms form a hierarchy of generality:

* Gupta baseline  — safe + unique;
* SCC algorithm   — safe;
* brute force     — anything (exponential oracle).

On common ground they must agree: same existence answer, and for
safe+unique inputs the same (full) coordinating set.  The consistent
algorithm is cross-validated against the oracle through the lowering in
``tests/core/test_consistent_lowering.py``; here we add randomized
workload-level agreement checks.
"""

import random

import pytest

from repro.core import (
    CoordinationGraph,
    find_coordinating_set,
    gupta_coordinate,
    is_unique,
    safety_report,
    scc_coordinate,
    verify_result_set,
)
from repro.db import DatabaseBuilder
from repro.networks import gnp_digraph, member_name
from repro.workloads import queries_from_structure


def _mini_members_db(users=12, missing=()):
    """A tiny member table; ``missing`` users get no row (unsatisfiable
    bodies for their queries)."""
    builder = DatabaseBuilder()
    builder.table("Members", ["username", "region", "interest", "karma"], key="username")
    rows = []
    for i in range(users):
        if i in missing:
            continue
        rows.append((member_name(i), "EU", "science", i))
    builder.rows("Members", rows)
    return builder.build()


class TestSccVsBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_existence_agrees_on_random_structures(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(3, 7)
        structure = gnp_digraph(n, rng.choice([0.15, 0.3, 0.5]), seed=seed)
        missing = tuple(
            i for i in range(n) if rng.random() < 0.3
        )
        db = _mini_members_db(users=n, missing=missing)
        queries = queries_from_structure(structure)
        result = scc_coordinate(db, queries)
        exact = find_coordinating_set(db, queries)
        assert result.found == (exact is not None), (
            f"seed={seed} structure={sorted(structure.edges())} missing={missing}"
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_all_outputs_verify(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randrange(3, 8)
        structure = gnp_digraph(n, 0.35, seed=seed)
        missing = tuple(i for i in range(n) if rng.random() < 0.25)
        db = _mini_members_db(users=n, missing=missing)
        queries = queries_from_structure(structure)
        result = scc_coordinate(db, queries)
        for candidate in result.candidates:
            report = verify_result_set(db, queries, candidate)
            assert report.ok, report.reason

    @pytest.mark.parametrize("seed", range(10))
    def test_scc_chosen_never_smaller_than_reachability_optimum(self, seed):
        """SCC's guarantee: max over coordinating sets in {R(q)}."""
        rng = random.Random(2000 + seed)
        n = rng.randrange(3, 6)
        structure = gnp_digraph(n, 0.3, seed=3 * seed)
        db = _mini_members_db(users=n)
        queries = queries_from_structure(structure)
        result = scc_coordinate(db, queries)
        # Every body is satisfiable and partner unifications are
        # unconstrained, so every R(q) is a coordinating set; the chosen
        # one must be a largest R(q).
        graph = CoordinationGraph.build(queries)
        from repro.graphs import condensation

        cond = condensation(graph.graph)
        best = max(
            len(cond.reachable_nodes(c))
            for c in range(cond.component_count)
        )
        assert result.found
        assert result.chosen.size == best


class TestGuptaVsScc:
    @pytest.mark.parametrize("seed", range(8))
    def test_agree_on_safe_unique_inputs(self, seed):
        """On a ring (safe + unique) both must find the full set."""
        rng = random.Random(seed)
        n = rng.randrange(2, 7)
        from repro.networks import ring_digraph

        structure = ring_digraph(n)
        db = _mini_members_db(users=n)
        queries = queries_from_structure(structure)
        graph = CoordinationGraph.build(queries)
        assert safety_report(graph).is_safe and is_unique(graph)

        baseline = gupta_coordinate(db, queries)
        ours = scc_coordinate(db, queries)
        assert baseline.found and ours.found
        assert baseline.chosen.member_set() == ours.chosen.member_set()

    def test_failure_agreement_on_unsatisfiable_ring(self):
        from repro.networks import ring_digraph

        n = 4
        db = _mini_members_db(users=n, missing=(2,))
        queries = queries_from_structure(ring_digraph(n))
        baseline = gupta_coordinate(db, queries)
        ours = scc_coordinate(db, queries)
        assert not baseline.found and not ours.found
