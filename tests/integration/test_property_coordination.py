"""Property-based end-to-end tests over randomly generated workloads.

Hypothesis drives structure generation; the invariants are:

1. every candidate any algorithm reports passes Definition 1;
2. the SCC algorithm finds a set iff the exponential oracle does;
3. the consistent algorithm's outcome converts to a Definition-1
   witness of its lowered entangled queries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
    consistent_coordinate,
    find_coordinating_set,
    lower_all,
    outcome_witness,
    scc_coordinate,
    verify_coordinating_set,
    verify_result_set,
)
from repro.db import DatabaseBuilder
from repro.graphs import DiGraph
from repro.networks import member_name
from repro.workloads import queries_from_structure

# ---------------------------------------------------------------------------
# Random partner structures (safe workloads for the SCC algorithm)
# ---------------------------------------------------------------------------
_edge_sets = st.integers(min_value=3, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=n * 2,
        ),
        st.sets(st.integers(0, n - 1), max_size=2),
    )
)


def _partner_db(n, missing):
    builder = DatabaseBuilder()
    builder.table(
        "Members", ["username", "region", "interest", "karma"], key="username"
    )
    builder.rows(
        "Members",
        [
            (member_name(i), "EU", "games", i)
            for i in range(n)
            if i not in missing
        ],
    )
    return builder.build()


@given(_edge_sets)
@settings(max_examples=60, deadline=None)
def test_scc_existence_matches_oracle(case):
    n, edges, missing = case
    structure = DiGraph()
    structure.add_nodes(range(n))
    structure.add_edges(edges)
    db = _partner_db(n, missing)
    queries = queries_from_structure(structure)
    result = scc_coordinate(db, queries)
    oracle = find_coordinating_set(db, queries)
    assert result.found == (oracle is not None)
    for candidate in result.candidates:
        assert verify_result_set(db, queries, candidate).ok


# ---------------------------------------------------------------------------
# Random consistent workloads
# ---------------------------------------------------------------------------
_DESTS = ("Paris", "Zurich")
_DAYS = ("mon", "tue")

_consistent_cases = st.fixed_dictionaries(
    {
        "flights": st.sets(
            st.tuples(st.sampled_from(_DESTS), st.sampled_from(_DAYS)),
            min_size=1,
            max_size=4,
        ),
        "friendships": st.sets(
            st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=8,
        ),
        "constraints": st.lists(
            st.one_of(
                st.none(),
                st.sampled_from(_DESTS).map(lambda d: ("destination", d)),
                st.sampled_from(_DAYS).map(lambda d: ("day", d)),
            ),
            min_size=4,
            max_size=4,
        ),
        "partner_kinds": st.lists(
            st.sampled_from(["friend", "named", "none"]), min_size=4, max_size=4
        ),
    }
)


def _users():
    return [f"U{i}" for i in range(4)]


def _build_consistent(case):
    users = _users()
    builder = DatabaseBuilder()
    builder.table("Flights", ["flightId", "destination", "day"], key="flightId")
    builder.rows(
        "Flights",
        [(100 + i, d, day) for i, (d, day) in enumerate(sorted(case["flights"]))],
    )
    builder.table("Friends", ["user", "friend"])
    builder.rows(
        "Friends",
        [(users[a], users[b]) for a, b in sorted(case["friendships"])],
    )
    db = builder.build()
    queries = []
    for i, user in enumerate(users):
        constraint = case["constraints"][i]
        constraints = dict([constraint]) if constraint else {}
        kind = case["partner_kinds"][i]
        if kind == "friend":
            partners = [FriendSlot()]
        elif kind == "named":
            partners = [NamedPartner(users[(i + 1) % 4])]
        else:
            partners = []
        queries.append(ConsistentQuery(user, constraints, partners))
    setup = ConsistentSetup("Flights", ("destination", "day"), ("Friends",))
    return db, setup, queries


@given(_consistent_cases)
@settings(max_examples=60, deadline=None)
def test_consistent_outcomes_are_definition1_witnesses(case):
    db, setup, queries = _build_consistent(case)
    result = consistent_coordinate(db, setup, queries)
    if not result.found:
        return
    lowered = lower_all(queries, setup, db)
    witness = outcome_witness(result.chosen, queries, setup, db)
    assert witness is not None
    members = list(result.chosen.selections)
    report = verify_coordinating_set(db, lowered, members, witness)
    assert report.ok, report.reason


@given(_consistent_cases)
@settings(max_examples=40, deadline=None)
def test_consistent_existence_never_exceeds_oracle(case):
    """If the consistent algorithm finds a set, the oracle agrees.

    (The converse — oracle finds one that the value loop misses — would
    contradict Proposition 1; both directions are checked.)
    """
    db, setup, queries = _build_consistent(case)
    result = consistent_coordinate(db, setup, queries)
    lowered = lower_all(queries, setup, db)
    oracle = find_coordinating_set(db, lowered)
    assert result.found == (oracle is not None)
