"""Unit tests for elementary graph generators."""

import pytest

from repro.errors import GraphError
from repro.graphs import is_strongly_connected
from repro.networks import (
    complete_digraph,
    gnp_digraph,
    list_digraph,
    ring_digraph,
    star_digraph,
)


class TestListDigraph:
    def test_structure(self):
        g = list_digraph(5)
        assert g.edge_count() == 4
        assert g.successors(0) == {1}
        assert g.successors(4) == set()

    def test_single_node(self):
        g = list_digraph(1)
        assert g.node_count() == 1
        assert g.edge_count() == 0

    def test_invalid(self):
        with pytest.raises(GraphError):
            list_digraph(0)


class TestRingDigraph:
    def test_strongly_connected(self):
        assert is_strongly_connected(ring_digraph(7))

    def test_degrees(self):
        g = ring_digraph(7)
        for node in g.nodes():
            assert g.out_degree(node) == 1
            assert g.in_degree(node) == 1

    def test_self_loop_ring_of_one(self):
        g = ring_digraph(1)
        assert g.has_edge(0, 0)


class TestStarDigraph:
    def test_hub_points_everywhere(self):
        g = star_digraph(6)
        assert g.out_degree(0) == 5
        assert all(g.in_degree(i) == 1 for i in range(1, 6))


class TestCompleteDigraph:
    def test_all_ordered_pairs(self):
        g = complete_digraph(5)
        assert g.edge_count() == 20
        assert is_strongly_connected(g)

    def test_no_self_loops(self):
        g = complete_digraph(4)
        for node in g.nodes():
            assert not g.has_edge(node, node)


class TestGnp:
    def test_probability_zero(self):
        g = gnp_digraph(20, 0.0, seed=1)
        assert g.edge_count() == 0

    def test_probability_one(self):
        g = gnp_digraph(10, 1.0, seed=1)
        assert g.edge_count() == 90

    def test_deterministic(self):
        a = gnp_digraph(30, 0.1, seed=4)
        b = gnp_digraph(30, 0.1, seed=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            gnp_digraph(10, 1.5)
