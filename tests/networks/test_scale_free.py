"""Unit tests for the directed scale-free generator."""

import pytest

from repro.errors import GraphError
from repro.networks import degree_tail_ratio, in_degree_sequence, scale_free_digraph


class TestGeneration:
    def test_node_count(self):
        g = scale_free_digraph(50, seed=1)
        assert g.node_count() == 50

    def test_first_node_has_no_out_edges(self):
        g = scale_free_digraph(30, seed=2)
        assert g.out_degree(0) == 0

    def test_out_degree_bounded(self):
        g = scale_free_digraph(40, out_degree=3, seed=3)
        for node in g.nodes():
            assert g.out_degree(node) <= 3

    def test_edges_point_to_earlier_nodes(self):
        g = scale_free_digraph(40, seed=4)
        for source, target in g.edges():
            assert target < source

    def test_deterministic_by_seed(self):
        a = scale_free_digraph(40, seed=7)
        b = scale_free_digraph(40, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = scale_free_digraph(60, seed=1)
        b = scale_free_digraph(60, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            scale_free_digraph(0)
        with pytest.raises(GraphError):
            scale_free_digraph(10, out_degree=0)

    def test_tiny_graphs(self):
        assert scale_free_digraph(1, seed=0).node_count() == 1
        g = scale_free_digraph(2, seed=0)
        assert g.has_edge(1, 0)


class TestDegreeDistribution:
    def test_heavy_tail(self):
        """Preferential attachment concentrates in-degree in few nodes."""
        g = scale_free_digraph(800, out_degree=2, seed=5)
        ratio = degree_tail_ratio(g, top_fraction=0.1)
        # Uniform attachment would give ~0.1; preferential attachment
        # concentrates far more than that.
        assert ratio > 0.25

    def test_in_degree_sequence_sorted(self):
        g = scale_free_digraph(100, seed=6)
        sequence = in_degree_sequence(g)
        assert sequence == sorted(sequence, reverse=True)
        assert sum(sequence) == g.edge_count()

    def test_acyclic_by_construction(self):
        from repro.graphs import is_acyclic

        assert is_acyclic(scale_free_digraph(100, seed=8))
