"""Unit tests for the synthetic Slashdot-like member table."""

from repro.networks import (
    SLASHDOT_SIZE,
    add_friend_table,
    member_name,
    slashdot_like_members,
    slashdot_like_network,
)


class TestMemberTable:
    def test_default_size_matches_paper(self):
        assert SLASHDOT_SIZE == 82_168

    def test_scaled_table(self):
        db = slashdot_like_members(size=250, seed=1)
        assert db.sizes() == {"Members": 250}

    def test_schema(self):
        db = slashdot_like_members(size=10)
        schema = db.schema.get("Members")
        assert schema.attributes == ("username", "region", "interest", "karma")
        assert schema.key == "username"

    def test_every_user_has_a_row(self):
        db = slashdot_like_members(size=50)
        rows = {row[0] for row in db.rows("Members")}
        assert rows == {member_name(i) for i in range(50)}

    def test_deterministic_by_seed(self):
        a = slashdot_like_members(size=40, seed=3)
        b = slashdot_like_members(size=40, seed=3)
        assert a.rows("Members") == b.rows("Members")

    def test_member_name_format(self):
        assert member_name(0) == "user00000"
        assert member_name(12345) == "user12345"


class TestFriendTable:
    def test_network_materialisation(self):
        db = slashdot_like_members(size=30)
        graph = slashdot_like_network(30, out_degree=2, seed=9)
        inserted = add_friend_table(db, graph)
        assert inserted == graph.edge_count()
        assert db.sizes()["Friends"] == inserted

    def test_edges_use_member_names(self):
        db = slashdot_like_members(size=10)
        graph = slashdot_like_network(10, seed=2)
        add_friend_table(db, graph)
        for user, friend in db.rows("Friends"):
            assert user.startswith("user") and friend.startswith("user")

    def test_custom_relation_name(self):
        db = slashdot_like_members(size=10)
        graph = slashdot_like_network(10, seed=2)
        add_friend_table(db, graph, relation="Buddies")
        assert "Buddies" in db
