"""Round-trip tests for the Appendix B reduction (mixed attributes)."""

import pytest

from repro.core import find_coordinating_set, is_safe, verify_coordinating_set
from repro.hardness import is_satisfiable, random_3sat, three_sat
from repro.hardness.appendix_b import (
    DATE_FALSE,
    DATE_TRUE,
    build_database,
    decode,
    encode,
    satisfiable_via_entangled,
)


class TestEncoding:
    def test_query_inventory(self):
        f = three_sat([(1, -2, 3)])
        instance = encode(f)
        names = {q.name for q in instance.queries}
        assert "qC" in names
        assert "qC0" in names
        assert {"qX1", "qX*1", "S1"} <= names
        assert len(names) == 1 + 1 + 3 * 3  # qC + k + 3 per variable

    def test_database_has_both_dates(self):
        f = three_sat([(1, -2, 3)])
        db = build_database(f)
        dates = {row[1] for row in db.rows("Fl")}
        assert dates == {DATE_TRUE, DATE_FALSE}

    def test_friends_encode_satisfying_literals(self):
        f = three_sat([(1, -2, 3)])
        db = build_database(f)
        friends = set(db.rows("Fr"))
        assert ("C0", "X1") in friends
        assert ("C0", "X*2") in friends
        assert ("C0", "X3") in friends
        assert len(friends) == 3

    def test_instance_is_unsafe(self):
        # The clause queries' variable-partner postconditions are the
        # unsafe pattern the Consistent algorithm handles — but here
        # queries coordinate on *different* attribute sets, so no
        # polynomial algorithm of the paper applies.
        f = three_sat([(1, -2, 3)])
        instance = encode(f)
        assert not is_safe(instance.queries)


class TestRoundTrip:
    def test_satisfiable_formula(self):
        f = three_sat([(1, 2, 3)])
        ok, model = satisfiable_via_entangled(f)
        assert ok
        assert f.evaluate(model)

    def test_unsatisfiable_formula(self):
        f = three_sat([(1, 1, 1), (-1, -1, -1)])
        ok, model = satisfiable_via_entangled(f)
        assert not ok and model is None

    @pytest.mark.parametrize("seed", range(4))
    def test_random_agreement_with_dpll(self, seed):
        f = random_3sat(3, 1 + seed % 3, seed=300 + seed)
        expected = is_satisfiable(f)
        ok, model = satisfiable_via_entangled(f)
        assert ok == expected, str(f)
        if ok:
            assert f.evaluate(model)

    def test_found_set_verifies_under_definition_1(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        found = find_coordinating_set(instance.db, instance.queries)
        assert found is not None
        report = verify_coordinating_set(
            instance.db, instance.queries, found.members, found.assignment
        )
        assert report.ok, report.reason

    def test_selection_gadget_excludes_opposite_literals(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        found = find_coordinating_set(instance.db, instance.queries)
        members = found.member_set()
        for variable in (1, 2, 3):
            assert not (
                f"qX{variable}" in members and f"qX*{variable}" in members
            )
