"""Round-trip tests for the Theorem 2 reduction (EntangledMax)."""

import pytest

from repro.core import is_safe, scc_coordinate
from repro.hardness import is_satisfiable, random_3sat, three_sat
from repro.hardness.theorem2 import (
    decode,
    encode,
    gadget_membership_counts,
    max_size_via_entangled,
)
from repro.core import find_maximum_coordinating_set


class TestEncoding:
    def test_query_inventory(self):
        f = three_sat([(1, -2, 3), (2, -3, 4)])
        instance = encode(f)
        assert len(instance.queries) == 4 + 2 * 3  # m value + 3k gadget
        assert instance.target_size == 2 + 4

    def test_instance_is_safe(self):
        # Theorem 2's whole point: hardness *despite* safety.
        f = three_sat([(1, -2, 3), (2, -3, 4)])
        instance = encode(f)
        assert is_safe(instance.queries)

    def test_gadget_postconditions_cumulative(self):
        f = three_sat([(1, -2, 3)])
        instance = encode(f)
        lit0 = next(q for q in instance.queries if q.name == "c0-lit0")
        lit1 = next(q for q in instance.queries if q.name == "c0-lit1")
        lit2 = next(q for q in instance.queries if q.name == "c0-lit2")
        assert len(lit0.postconditions) == 1
        assert len(lit1.postconditions) == 2
        assert len(lit2.postconditions) == 3

    def test_paper_example_postconditions(self):
        # C = x1 ∨ ¬x2 ∨ x3 gives {R1(1)}, {R2(0), R1(0)},
        # {R3(1), R2(1), R1(0)} (Appendix A).
        f = three_sat([(1, -2, 3)])
        instance = encode(f)
        lit2 = next(q for q in instance.queries if q.name == "c0-lit2")
        grounded = [(a.relation, a.terms[0].value) for a in lit2.postconditions]
        assert grounded == [("R3", 1), ("R2", 1), ("R1", 0)]


class TestRoundTrip:
    def test_satisfiable_reaches_k_plus_m(self):
        f = three_sat([(1, 2, 3), (-1, 2, 3)])
        size, model = max_size_via_entangled(f)
        assert size == encode(f).target_size
        assert f.evaluate(model)

    def test_unsatisfiable_falls_short(self):
        # The smallest unsatisfiable width-3 instance (repeated
        # literals keep the encoding's subset search tractable for the
        # exponential oracle: 7 queries, not 27).
        f = three_sat([(1, 1, 1), (-1, -1, -1)])
        size, _ = max_size_via_entangled(f)
        assert size < encode(f).target_size

    @pytest.mark.parametrize("seed", range(6))
    def test_random_agreement_with_dpll(self, seed):
        f = random_3sat(3, 2 + seed % 3, seed=100 + seed)
        expected = is_satisfiable(f)
        size, model = max_size_via_entangled(f)
        assert (size == encode(f).target_size) == expected
        if expected:
            assert f.evaluate(model)

    def test_at_most_one_gadget_query_per_clause(self):
        f = three_sat([(1, 2, 3), (-1, -2, 3)])
        instance = encode(f)
        found = find_maximum_coordinating_set(instance.db, instance.queries)
        counts = gadget_membership_counts(instance, found)
        assert all(count <= 1 for count in counts.values())

    def test_decode_reads_value_queries(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        found = find_maximum_coordinating_set(instance.db, instance.queries)
        model = decode(instance, found)
        assert f.evaluate(model)


class TestFigure9:
    """The coordination graph of the proof's worked example.

    Figure 9 draws the instance for C1 = x1 ∨ ¬x2 ∨ x3 and
    C2 = x2 ∨ ¬x3 ∨ ¬x4: every gadget query points exactly at the
    value queries of the variables its postconditions mention.
    """

    def test_graph_matches_figure_9(self):
        from repro.core import CoordinationGraph

        f = three_sat([(1, -2, 3), (2, -3, -4)])
        instance = encode(f)
        graph = CoordinationGraph.build(instance.queries)
        expected = {
            "c0-lit0": {"val-x1"},
            "c0-lit1": {"val-x1", "val-x2"},
            "c0-lit2": {"val-x1", "val-x2", "val-x3"},
            "c1-lit0": {"val-x2"},
            "c1-lit1": {"val-x2", "val-x3"},
            "c1-lit2": {"val-x2", "val-x3", "val-x4"},
            "val-x1": set(),
            "val-x2": set(),
            "val-x3": set(),
            "val-x4": set(),
        }
        for name, successors in expected.items():
            assert graph.graph.successors(name) == successors, name


class TestSccAlgorithmLimitation:
    def test_scc_candidates_are_small(self):
        """The SCC algorithm's R(q) guarantee cannot reach k+m here.

        Demonstrates why EntangledMax stays hard for safe sets: the
        polynomial algorithm only sees per-reachability candidates of
        size ≤ 4 (one gadget query + its ≤3 value queries).
        """
        f = three_sat([(1, 2, 3), (-1, 2, -3)])
        instance = encode(f)
        result = scc_coordinate(instance.db, instance.queries)
        assert result.found
        assert result.chosen.size <= 4
        assert result.chosen.size < instance.target_size
