"""Round-trip tests for the Theorem 1 reduction.

Property: a 3SAT formula is satisfiable iff its Theorem-1 encoding has
a coordinating set, and the decoded assignment satisfies the formula.
The SAT side is decided by the independent DPLL oracle.
"""

import pytest

from repro.core import (
    CoordinationGraph,
    is_safe,
    safety_report,
    verify_coordinating_set,
)
from repro.hardness import is_satisfiable, random_3sat, three_sat
from repro.hardness.theorem1 import (
    CLAUSE_QUERY_NAME,
    Theorem1Instance,
    decode,
    encode,
    encode_model,
    satisfiable_via_entangled,
)
from repro.core import find_coordinating_set


class TestEncoding:
    def test_query_inventory(self):
        f = three_sat([(1, 2, 3), (-1, -2, 3)])
        instance = encode(f)
        names = set(instance.query_names())
        assert CLAUSE_QUERY_NAME in names
        for variable in (1, 2, 3):
            assert f"x{variable}-val" in names
            assert f"x{variable}-true" in names
            assert f"x{variable}-false" in names
        assert len(names) == 1 + 3 * 3

    def test_database_is_two_valued(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        assert sorted(instance.db.rows("D")) == [(0,), (1,)]
        assert instance.db.sizes() == {"D": 2}

    def test_instance_is_not_safe(self):
        # The clause query's postconditions unify with several literal
        # queries' heads: Theorem 1 lives in Q_all, not Q_safe.
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        assert not is_safe(instance.queries)

    def test_true_query_heads_cover_positive_clauses(self):
        f = three_sat([(1, 2, 3), (1, -2, -3)])
        instance = encode(f)
        true_q = next(q for q in instance.queries if q.name == "x1-true")
        # x1 appears positively in clauses 0 and 1.
        assert {a.relation for a in true_q.head} == {"C0", "C1"}

    def test_false_query_empty_head_when_no_negative_occurrence(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        false_q = next(q for q in instance.queries if q.name == "x1-false")
        assert false_q.head == ()


class TestRoundTrip:
    def test_satisfiable_example(self):
        f = three_sat([(1, 2, 3), (-1, 2, 3)])
        ok, model = satisfiable_via_entangled(f)
        assert ok
        assert f.evaluate(model)

    def test_unsatisfiable_example(self):
        clauses = [
            (s1, s2, s3)
            for s1 in (1, -1)
            for s2 in (2, -2)
            for s3 in (3, -3)
        ]
        f = three_sat(clauses)
        ok, model = satisfiable_via_entangled(f)
        assert not ok and model is None

    @pytest.mark.parametrize("seed", range(10))
    def test_random_formulas_agree_with_dpll(self, seed):
        f = random_3sat(3, 2 + seed % 6, seed=seed)
        expected = is_satisfiable(f)
        ok, model = satisfiable_via_entangled(f)
        assert ok == expected
        if ok:
            assert f.evaluate(model)

    def test_encode_model_is_a_coordinating_set(self):
        from repro.hardness import solve

        f = three_sat([(1, 2, 3), (-1, 2, -3)])
        sat_model = solve(f)
        instance = encode(f)
        members = encode_model(instance, sat_model)
        # The proof's ⇒ direction: this member set coordinates.  Verify
        # via brute-force restricted to exactly those members.
        restricted = [q for q in instance.queries if q.name in members]
        found = find_coordinating_set(instance.db, restricted)
        assert found is not None
        assert found.member_set() <= set(members)
        # The full selection itself is a coordinating set too: witness
        # it directly by maximising over the restricted instance.
        from repro.core import find_maximum_coordinating_set

        maximum = find_maximum_coordinating_set(instance.db, restricted)
        assert maximum is not None
        assert maximum.member_set() == set(members)

    def test_found_set_verifies_against_definition_1(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        found = find_coordinating_set(instance.db, instance.queries)
        assert found is not None
        report = verify_coordinating_set(
            instance.db, instance.queries, found.members, found.assignment
        )
        assert report.ok, report.reason

    def test_decode_defaults_unused_variables_false(self):
        f = three_sat([(1, 2, 3)])
        instance = encode(f)
        found = find_coordinating_set(instance.db, instance.queries)
        model = decode(instance, found)
        assert set(model) == {1, 2, 3}
