"""Unit tests for CNF formulas."""

import pytest

from repro.errors import FormulaError
from repro.hardness import CNF, three_sat


class TestConstruction:
    def test_basic(self):
        f = CNF([(1, -2), (2, 3)])
        assert f.clause_count == 2
        assert f.variables() == (1, 2, 3)
        assert f.variable_count == 3

    def test_empty_clause_rejected(self):
        with pytest.raises(FormulaError):
            CNF([()])

    def test_zero_literal_rejected(self):
        with pytest.raises(FormulaError):
            CNF([(1, 0)])

    def test_empty_formula_rejected(self):
        with pytest.raises(FormulaError):
            CNF([])

    def test_three_sat_width_enforced(self):
        with pytest.raises(FormulaError):
            three_sat([(1, 2)])
        f = three_sat([(1, 2, 3)])
        assert f.clause_count == 1


class TestQueries:
    def test_literals_of(self):
        f = CNF([(1, -2), (-1, 2), (1, 3)])
        assert f.literals_of(1) == (1, -1, 1)

    def test_clauses_with_literal(self):
        f = CNF([(1, -2), (-1, 2), (1, 3)])
        assert f.clauses_with_literal(1) == (0, 2)
        assert f.clauses_with_literal(-1) == (1,)
        assert f.clauses_with_literal(-3) == ()


class TestEvaluate:
    def test_satisfying_model(self):
        f = CNF([(1, 2), (-1, 2)])
        assert f.evaluate({1: True, 2: True})
        assert f.evaluate({1: False, 2: True})

    def test_falsifying_model(self):
        f = CNF([(1, 2), (-1, 2)])
        assert not f.evaluate({1: True, 2: False})

    def test_partial_model_defaults_false(self):
        f = CNF([(-1, 2)])
        assert f.evaluate({})  # x1 false satisfies ¬x1

    def test_str_format(self):
        f = CNF([(1, -2)])
        assert "x1" in str(f) and "¬x2" in str(f)
