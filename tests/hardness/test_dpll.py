"""Unit tests for the DPLL solver, cross-checked against brute force."""

import pytest

from repro.hardness import (
    CNF,
    brute_force_satisfiable,
    is_satisfiable,
    random_3sat,
    solve,
)


class TestKnownInstances:
    def test_single_clause_sat(self):
        f = CNF([(1, 2, 3)])
        model = solve(f)
        assert model is not None
        assert f.evaluate(model)

    def test_forced_assignment(self):
        f = CNF([(1,), (-1, 2), (-2, 3)])
        model = solve(f)
        assert model == {1: True, 2: True, 3: True}

    def test_unsat_pair(self):
        f = CNF([(1,), (-1,)])
        assert solve(f) is None
        assert not is_satisfiable(f)

    def test_unsat_full_enumeration(self):
        # All eight sign patterns over three variables.
        clauses = [
            (s1, s2, s3)
            for s1 in (1, -1)
            for s2 in (2, -2)
            for s3 in (3, -3)
        ]
        assert not is_satisfiable(CNF(clauses))

    def test_pure_literal_elimination(self):
        f = CNF([(1, 2), (1, 3)])
        model = solve(f)
        assert model is not None
        assert model[1] is True

    def test_model_is_total(self):
        f = CNF([(1, 2, 3), (-2, -3, 4)])
        model = solve(f)
        assert set(model) == {1, 2, 3, 4}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_agreement(self, seed):
        n_vars = 3 + seed % 5
        ratio = (2.0, 4.3, 6.0)[seed % 3]
        f = random_3sat(n_vars, max(1, int(n_vars * ratio)), seed=seed)
        expected = brute_force_satisfiable(f)
        model = solve(f)
        assert (model is not None) == expected
        if model is not None:
            assert f.evaluate(model)


class TestRandomGenerator:
    def test_requires_three_variables(self):
        from repro.errors import FormulaError

        with pytest.raises(FormulaError):
            random_3sat(2, 1)

    def test_deterministic_by_seed(self):
        a = random_3sat(6, 12, seed=5)
        b = random_3sat(6, 12, seed=5)
        assert a.clauses == b.clauses

    def test_distinct_variables_per_clause(self):
        f = random_3sat(5, 40, seed=9)
        for clause in f.clauses:
            assert len({abs(l) for l in clause}) == 3

    def test_ratio_helper(self):
        from repro.hardness import random_3sat_at_ratio

        f = random_3sat_at_ratio(10, 4.0, seed=1)
        assert f.clause_count == 40
