"""Tests for the scenario renderer: on-disk round-trips."""

import pytest

from repro.core import parse_queries, parse_query
from repro.db import load_database
from repro.scenarios import (
    SCENARIOS,
    get_scenario,
    render_event,
    render_query,
    render_stream,
    write_scenario,
)


class TestRenderQuery:
    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_every_catalog_query_roundtrips(self, name):
        scenario = get_scenario(name)
        _, events = scenario.build(24, 2012)
        queries = []
        for event in events:
            if event[0] == "submit":
                queries.append(event[1])
            elif event[0] == "submit_many":
                queries.extend(event[1])
        assert queries
        for query in queries:
            assert parse_query(render_query(query)) == query


class TestRenderEvent:
    def test_retract_and_flush_drain(self):
        assert render_event(("retract", "user00003")) == "retract user00003"
        assert render_event(("flush_drain",)) == "flush_drain"

    def test_insert_delete_values(self):
        assert (
            render_event(("insert", "Riders", ("rider00001", "north")))
            == "insert Riders rider00001 north"
        )
        assert (
            render_event(("delete", "Anchors", ("node0001", 7)))
            == "delete Anchors node0001 7"
        )

    def test_submit_many_renders_as_batch_line(self):
        scenario = get_scenario("keyword")
        _, events = scenario.build(16, 2012)
        batch = next(e for e in events if e[0] == "submit_many")
        line = render_event(batch)
        assert line.startswith("batch ")
        parsed = parse_queries(line[len("batch "):])
        assert tuple(parsed) == tuple(batch[1])

    def test_unknown_event_is_an_error(self):
        with pytest.raises(ValueError):
            render_event(("frobnicate", "x"))


class TestWriteScenario:
    def test_writes_replayable_files(self, tmp_path):
        scenario = get_scenario("marketplace")
        db, events = scenario.build(40, 2012)
        db_path, ops_path = write_scenario(
            db, events, str(tmp_path / "mk")
        )
        reloaded = load_database(db_path)
        assert sorted(reloaded.schema.names()) == sorted(db.schema.names())
        text = ops_path.read_text(encoding="utf-8")
        assert text == render_stream(events)
        assert text.endswith("flush_drain\n")
