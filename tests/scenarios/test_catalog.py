"""Tests for the scenario catalog and the stream runner."""

import pytest

from repro.core import ServiceConfig, ShardedCoordinationService
from repro.scenarios import (
    SCENARIOS,
    drive,
    get_scenario,
    render_stream,
    scenario_names,
)

#: Small scales so the whole matrix of catalog tests stays sub-second.
SMOKE_SCALE = {
    "partner": 48,
    "keyword": 24,
    "marketplace": 80,
    "adversarial": 16,
}


class TestCatalog:
    def test_names_in_catalog_order(self):
        assert scenario_names() == (
            "partner",
            "keyword",
            "marketplace",
            "adversarial",
        )

    def test_get_scenario_roundtrip(self):
        for scenario in SCENARIOS:
            assert get_scenario(scenario.name) is scenario

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError):
            get_scenario("nope")

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_builds_are_deterministic(self, name):
        scenario = get_scenario(name)
        scale = SMOKE_SCALE[name]
        db_a, events_a = scenario.build(scale, 7)
        db_b, events_b = scenario.build(scale, 7)
        assert render_stream(events_a) == render_stream(events_b)
        for relation in db_a.schema.names():
            assert sorted(db_a.rows(relation)) == sorted(db_b.rows(relation))

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_seed_changes_the_stream(self, name):
        scenario = get_scenario(name)
        scale = SMOKE_SCALE[name]
        _, events_a = scenario.build(scale, 1)
        _, events_b = scenario.build(scale, 2)
        assert render_stream(events_a) != render_stream(events_b)

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_streams_end_with_flush_drain(self, name):
        scenario = get_scenario(name)
        _, events = scenario.build(SMOKE_SCALE[name], 2012)
        assert events[-1] == ("flush_drain",)
        assert all(event[0] != "flush" for event in events)


class TestDrive:
    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_runs_every_scenario(self, name):
        scenario = get_scenario(name)
        db, events = scenario.build(SMOKE_SCALE[name], 2012)
        service = ShardedCoordinationService(db, ServiceConfig(shards=4))
        try:
            run = drive(service, events)
        finally:
            service.close()
        assert run.operations == len(events)
        if name == "marketplace":
            assert run.pending == 0  # stream retracts every dangler
        if name == "adversarial":
            assert run.resolved == 0  # ghost-blocked by construction

    def test_plain_flush_is_rejected(self):
        scenario = get_scenario("partner")
        db, _ = scenario.build(16, 2012)
        service = ShardedCoordinationService(db, ServiceConfig(shards=2))
        try:
            with pytest.raises(AssertionError, match="flush_drain"):
                drive(service, [("flush",)])
        finally:
            service.close()

    def test_rejections_are_counted_not_raised(self):
        scenario = get_scenario("partner")
        db, events = scenario.build(16, 2012)
        service = ShardedCoordinationService(db, ServiceConfig(shards=2))
        try:
            run = drive(service, events + [("retract", "no-such-query")])
        finally:
            service.close()
        assert run.rejected >= 1
