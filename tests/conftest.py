"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


def pytest_collection_modifyitems(config, items):
    """Give every test a pytest-timeout budget when the plugin is there.

    The concurrent shard executor makes deadlocks a *possible* failure
    mode, and a deadlocked test must fail, not wedge the run.  CI
    installs ``pytest-timeout``; local environments without it fall
    back to the ``faulthandler_timeout`` traceback dump configured in
    pytest.ini.  Tests may override with their own ``timeout`` marker.
    """
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(120))

from repro.db import Database, DatabaseBuilder
from repro.workloads import (
    members_database,
    movies_database,
    vacation_database,
    vacation_queries,
)


@pytest.fixture
def flights_db() -> Database:
    """A small flights table (the Section 2.1 example universe)."""
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows(
            "Flights",
            [
                (101, "Zurich"),
                (102, "Zurich"),
                (201, "Paris"),
                (301, "Athens"),
            ],
        )
        .build()
    )


@pytest.fixture
def vacation_db() -> Database:
    """The Section 2.2 flight–hotel database."""
    return vacation_database()


@pytest.fixture
def vacation_query_set():
    """The Section 2.2 query set (qC, qG, qJ, qW)."""
    return vacation_queries()


@pytest.fixture
def movies_db() -> Database:
    """The Section 5 movies database."""
    return movies_database()


@pytest.fixture(scope="session")
def small_members_db() -> Database:
    """A scaled-down member table shared across tests (expensive)."""
    return members_database(size=500, seed=2012)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that sample."""
    return random.Random(20120827)
