"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.db import Database, DatabaseBuilder
from repro.workloads import (
    members_database,
    movies_database,
    vacation_database,
    vacation_queries,
)


@pytest.fixture
def flights_db() -> Database:
    """A small flights table (the Section 2.1 example universe)."""
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows(
            "Flights",
            [
                (101, "Zurich"),
                (102, "Zurich"),
                (201, "Paris"),
                (301, "Athens"),
            ],
        )
        .build()
    )


@pytest.fixture
def vacation_db() -> Database:
    """The Section 2.2 flight–hotel database."""
    return vacation_database()


@pytest.fixture
def vacation_query_set():
    """The Section 2.2 query set (qC, qG, qJ, qW)."""
    return vacation_queries()


@pytest.fixture
def movies_db() -> Database:
    """The Section 5 movies database."""
    return movies_database()


@pytest.fixture(scope="session")
def small_members_db() -> Database:
    """A scaled-down member table shared across tests (expensive)."""
    return members_database(size=500, seed=2012)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that sample."""
    return random.Random(20120827)
