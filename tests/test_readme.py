"""Documentation tests: the README's code examples must execute.

Extracts every ```python fenced block from README.md and runs it; a
stale quickstart is a bug.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_exists_and_has_examples():
    blocks = _python_blocks()
    assert len(blocks) >= 1


@pytest.mark.parametrize("index", range(len(_python_blocks())))
def test_readme_block_executes(index):
    block = _python_blocks()[index]
    exec(compile(block, f"README.md[block {index}]", "exec"), {})


def test_readme_mentions_all_figures():
    text = README.read_text(encoding="utf-8")
    for token in ("Figures 4–8", "EXPERIMENTS.md", "DESIGN.md"):
        assert token in text
