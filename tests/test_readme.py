"""Documentation tests: the README's code examples must execute.

Extracts every ```python fenced block from README.md and runs it; a
stale quickstart is a bug.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_exists_and_has_examples():
    blocks = _python_blocks()
    assert len(blocks) >= 1


@pytest.mark.parametrize("index", range(len(_python_blocks())))
def test_readme_block_executes(index):
    block = _python_blocks()[index]
    exec(compile(block, f"README.md[block {index}]", "exec"), {})


def test_readme_mentions_all_figures():
    text = README.read_text(encoding="utf-8")
    for token in ("Figures 4–8", "EXPERIMENTS.md", "DESIGN.md"):
        assert token in text


def test_readme_documents_every_catalog_scenario():
    from repro.scenarios import scenario_names

    text = README.read_text(encoding="utf-8")
    for name in scenario_names():
        assert f"`{name}`" in text, f"scenario {name!r} missing from README"
    assert "bench_ablation_matrix.py" in text
    assert "BENCH_ablation_matrix.json" in text


def test_readme_documents_every_cli_subcommand():
    from repro.cli import build_parser

    text = README.read_text(encoding="utf-8")
    parser = build_parser()
    actions = [
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    ]
    subcommands = list(actions[0].choices)
    assert len(subcommands) >= 7
    for name in subcommands:
        assert f"`{name}" in text, f"subcommand {name!r} missing from README"


def test_readme_documents_every_stream_operation():
    text = README.read_text(encoding="utf-8")
    for op in (
        "submit",
        "batch",
        "retract",
        "insert",
        "delete",
        "flush",
        "flush_drain",
    ):
        assert op in text, f"stream op {op!r} missing from README"
