"""Unit tests for relation and database schemas."""

import pytest

from repro.db import RelationSchema, Schema
from repro.errors import SchemaError, UnknownRelationError


class TestRelationSchema:
    def test_basic(self):
        rs = RelationSchema("F", ["flightId", "destination"], key="flightId")
        assert rs.arity == 2
        assert rs.position_of("destination") == 1
        assert rs.key_position == 0

    def test_positions_of(self):
        rs = RelationSchema("S", ["a", "b", "c"])
        assert rs.positions_of(["c", "a"]) == (2, 0)

    def test_unknown_attribute(self):
        rs = RelationSchema("S", ["a"])
        with pytest.raises(SchemaError):
            rs.position_of("zzz")

    def test_no_key_declared(self):
        rs = RelationSchema("S", ["a"])
        with pytest.raises(SchemaError):
            _ = rs.key_position

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("S", ["a", "a"])

    def test_key_must_be_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("S", ["a"], key="b")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"])

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("S", [])


class TestSchema:
    def test_declare_and_lookup(self):
        schema = Schema().relation("F", ["id", "dest"], key="id")
        assert "F" in schema
        assert schema.get("F").arity == 2

    def test_duplicate_relation_rejected(self):
        schema = Schema().relation("F", ["id"])
        with pytest.raises(SchemaError):
            schema.relation("F", ["id"])

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            Schema().get("nope")

    def test_iteration_and_names(self):
        schema = Schema().relation("A", ["x"]).relation("B", ["y"])
        assert schema.names() == ("A", "B")
        assert len(schema) == 2
