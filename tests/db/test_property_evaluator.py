"""Property-based tests: the evaluator against a naive model checker.

Random small databases and random conjunctive queries; the evaluator's
solution set must equal the set produced by brute-force enumeration of
all assignments over the active domain.  This is the strongest
correctness guarantee for the join machinery that everything upstream
(combined queries, option lists) relies on.
"""

from itertools import product
from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import ConjunctiveQuery, Database
from repro.logic import Atom, Constant, Variable

_VALUES = [0, 1, 2]
_VARS = [Variable(n) for n in ("x", "y", "z")]

_relations = st.fixed_dictionaries(
    {
        "A": st.sets(
            st.tuples(st.sampled_from(_VALUES), st.sampled_from(_VALUES)),
            max_size=6,
        ),
        "B": st.sets(st.tuples(st.sampled_from(_VALUES)), max_size=3),
    }
)

_terms = st.one_of(
    st.sampled_from(_VARS),
    st.sampled_from([Constant(v) for v in _VALUES]),
)

_atoms = st.one_of(
    st.tuples(_terms, _terms).map(lambda ts: Atom("A", list(ts))),
    _terms.map(lambda t: Atom("B", [t])),
)

_queries = st.lists(_atoms, min_size=1, max_size=3).map(
    lambda atoms: ConjunctiveQuery(atoms)
)


def _build_db(data: Dict[str, Set[Tuple]]) -> Database:
    db = Database()
    db.create_relation("A", ["a1", "a2"])
    db.create_relation("B", ["b1"])
    db.insert_many("A", sorted(data["A"]))
    db.insert_many("B", sorted(data["B"]))
    return db


def _naive_solutions(db: Database, query: ConjunctiveQuery) -> Set[Tuple]:
    """All satisfying assignments by exhaustive enumeration."""
    variables = sorted(query.variables(), key=str)
    out: Set[Tuple] = set()
    for values in product(_VALUES, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            db.contains(atom.relation, atom.ground(assignment).values)
            for atom in query.atoms
        ):
            out.add(tuple(assignment[v] for v in variables))
    return out


@given(_relations, _queries)
@settings(max_examples=300, deadline=None)
def test_evaluator_matches_naive_model_checker(data, query):
    db = _build_db(data)
    variables = sorted(query.variables(), key=str)
    got = {
        tuple(solution[v] for v in variables) for solution in db.solutions(query)
    }
    expected = _naive_solutions(db, query)
    assert got == expected


@given(_relations, _queries)
@settings(max_examples=150, deadline=None)
def test_first_solution_consistent_with_satisfiability(data, query):
    db = _build_db(data)
    first = db.first_solution(query)
    assert (first is not None) == db.is_satisfiable(query)
    if first is not None:
        for atom in query.atoms:
            assert db.contains(atom.relation, atom.ground(first).values)
