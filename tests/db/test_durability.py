"""Unit tests for the durability primitives (WAL, snapshots, compaction).

Exhaustive where it matters: the torn-final-record suite truncates the
log at *every* byte offset of the last frame and asserts recovery keeps
every complete record and discards the tear.  An autouse fixture also
asserts no test leaks a file descriptor — the WAL and both snapshot
stores hold OS handles, and a leaked handle is a close() bug, not
noise.
"""

import os

import pytest

from repro.db import (
    Database,
    DurabilityConfig,
    DurableStore,
    FileSnapshotStore,
    RelationSchema,
    SQLiteSnapshotStore,
    wire,
)
from repro.db.durability import WriteAheadLog, scan_wal
from repro.errors import PreconditionError, WireError


@pytest.fixture(autouse=True)
def no_leaked_fds():
    """Every durability object opened in a test must be closed by it."""
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux dev box
        yield
        return
    before = len(os.listdir(fd_dir))
    yield
    after = len(os.listdir(fd_dir))
    assert after <= before, (
        f"test leaked {after - before} file descriptor(s)"
    )


def small_db() -> Database:
    db = Database()
    db.attach_relation(RelationSchema("user", ("id", "karma")))
    db.insert_many("user", [(i, i * 10) for i in range(5)])
    return db


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
def test_config_validates_policies(tmp_path):
    with pytest.raises(PreconditionError):
        DurabilityConfig(dir=tmp_path, fsync="sometimes")
    with pytest.raises(PreconditionError):
        DurabilityConfig(dir=tmp_path, snapshot_store="parchment")
    with pytest.raises(PreconditionError):
        DurabilityConfig(dir=tmp_path, snapshot_every=-1)
    config = DurabilityConfig(dir=str(tmp_path))
    assert config.dir == tmp_path  # path-like coerced to Path


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fsync", ["always", "never"])
def test_wal_append_and_scan_round_trip(tmp_path, fsync):
    path = tmp_path / "wal.log"
    log = WriteAheadLog(path, fsync=fsync)
    messages = [{"k": "j", "n": i, "payload": ["x", i]} for i in range(20)]
    for message in messages:
        log.append(message)
    log.close()
    records, valid_bytes, torn = scan_wal(path)
    assert records == messages
    assert valid_bytes == path.stat().st_size
    assert not torn


def test_wal_scan_missing_file(tmp_path):
    assert scan_wal(tmp_path / "absent.log") == ([], 0, False)


def test_wal_torn_final_record_at_every_byte_offset(tmp_path):
    """Cut the log inside the last record at each offset: the complete
    prefix must survive, the tear must be detected — no garbage, ever."""
    path = tmp_path / "wal.log"
    log = WriteAheadLog(path, fsync="never")
    messages = [{"k": "j", "n": i, "v": "payload" * 3} for i in range(3)]
    for message in messages:
        log.append(message)
    log.close()
    data = path.read_bytes()
    frame = wire.dumps(messages[-1])
    last_start = len(data) - (4 + len(frame))
    for cut in range(last_start, len(data)):
        torn_path = tmp_path / f"torn-{cut}.log"
        torn_path.write_bytes(data[:cut])
        records, valid_bytes, torn = scan_wal(torn_path)
        assert records == messages[:2]
        assert valid_bytes == last_start
        assert torn == (cut != last_start)
        torn_path.unlink()


def test_wal_flipped_byte_discards_final_record(tmp_path):
    path = tmp_path / "wal.log"
    log = WriteAheadLog(path, fsync="never")
    log.append({"k": "j", "n": 0})
    log.append({"k": "j", "n": 1})
    log.close()
    data = bytearray(path.read_bytes())
    data[-3] ^= 0xFF  # inside the final frame's payload
    path.write_bytes(bytes(data))
    records, _, torn = scan_wal(path)
    assert records == [{"k": "j", "n": 0}]
    assert torn


# ---------------------------------------------------------------------------
# Snapshot stores
# ---------------------------------------------------------------------------
STORES = [FileSnapshotStore, SQLiteSnapshotStore]


@pytest.mark.parametrize("store_cls", STORES)
def test_snapshot_store_round_trip(tmp_path, store_cls):
    store = store_cls(tmp_path)
    try:
        assert store.generations() == []
        payload = {"k": "snap", "journal_len": 7, "pending": ["a", "b"]}
        store.save(1, payload)
        store.save(2, {"k": "snap", "journal_len": 9})
        assert store.generations() == [1, 2]
        assert store.load(1) == payload
        store.delete(1)
        assert store.generations() == [2]
        store.delete(1)  # idempotent
    finally:
        store.close()


def test_file_snapshot_corruption_raises(tmp_path):
    store = FileSnapshotStore(tmp_path)
    store.save(1, {"k": "snap"})
    path = next(tmp_path.glob("snap-*.wire"))
    data = bytearray(path.read_bytes())
    data[-1] ^= 0x55
    path.write_bytes(bytes(data))
    with pytest.raises(WireError):
        store.load(1)


def test_sqlite_snapshot_missing_generation_raises(tmp_path):
    store = SQLiteSnapshotStore(tmp_path)
    try:
        with pytest.raises(WireError):
            store.load(42)
    finally:
        store.close()


def test_sqlite_store_uses_wal_pragmas(tmp_path):
    store = SQLiteSnapshotStore(tmp_path)
    try:
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"
        sync = store._conn.execute("PRAGMA synchronous").fetchone()[0]
        assert int(sync) == 1  # NORMAL
    finally:
        store.close()


# ---------------------------------------------------------------------------
# DurableStore: recovery, checkpoints, compaction
# ---------------------------------------------------------------------------
def make_store(tmp_path, **overrides) -> DurableStore:
    options = dict(dir=tmp_path, fsync="never")
    options.update(overrides)
    return DurableStore(DurabilityConfig(**options))


def test_empty_directory_recovers_empty(tmp_path):
    store = make_store(tmp_path)
    try:
        state = store.recover()
        assert state.empty
        assert state.generation == 0
        assert state.journal_len == 0
        assert not state.torn_record_discarded
    finally:
        store.close()


def test_appends_require_recovery_first(tmp_path):
    store = make_store(tmp_path)
    try:
        with pytest.raises(PreconditionError):
            store.append_journal(("flush_drain",))
    finally:
        store.close()


def snapshot_payload(journal_len: int) -> dict:
    db = small_db()
    payload, _ = wire.build_sync(db, {})
    return {
        "k": "snap",
        "journal_len": journal_len,
        "db": payload,
        "pending": [],
        "finals": [],
    }


@pytest.mark.parametrize("snapshot_store", ["file", "sqlite"])
def test_checkpoint_compacts_and_recovers(tmp_path, snapshot_store):
    store = make_store(tmp_path, snapshot_store=snapshot_store)
    store.recover()
    store.append_journal(("flush_drain",))
    store.append_journal(("retract", "alice", False))
    assert store.journal_len == 2
    generation = store.checkpoint(snapshot_payload(journal_len=2))
    assert generation == 1
    store.append_journal(("flush_drain",))
    store.close()

    # Reopen: the snapshot subsumes the first two entries, the WAL
    # suffix holds exactly the one appended after the checkpoint.
    reopened = make_store(tmp_path, snapshot_store=snapshot_store)
    try:
        state = reopened.recover()
        assert state.generation == 1
        assert state.snapshot_journal_len == 2
        assert [r for r in state.records] == [("journal", ("flush_drain",))]
        assert state.journal_len == 3
        assert state.db_sync is not None
    finally:
        reopened.close()


def test_checkpoint_with_zero_wal_suffix(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    store.append_journal(("flush_drain",))
    store.checkpoint(snapshot_payload(journal_len=1))
    store.close()
    reopened = make_store(tmp_path)
    try:
        state = reopened.recover()
        assert state.generation == 1
        assert state.records == []
        assert state.journal_len == 1
    finally:
        reopened.close()


def test_compaction_deletes_older_generations(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    for round_index in range(1, 4):
        store.append_journal(("flush_drain",))
        assert store.checkpoint(
            snapshot_payload(journal_len=round_index)
        ) == round_index
    try:
        assert store.snapshots.generations() == [3]
        wals = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        assert wals == ["wal-00000003.log"]
    finally:
        store.close()


def test_corrupt_newest_snapshot_falls_back_a_generation(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    store.append_journal(("flush_drain",))
    store.checkpoint(snapshot_payload(journal_len=1))
    store.append_journal(("retract", "bob", True))
    store.checkpoint(snapshot_payload(journal_len=2))
    store.close()
    # Resurrect generation 1 (compaction deleted it), then corrupt
    # generation 2: recovery must fall back, replaying gen 1's WAL.
    file_store = FileSnapshotStore(tmp_path)
    file_store.save(1, snapshot_payload(journal_len=1))
    newest = tmp_path / "snap-00000002.wire"
    newest.write_bytes(b"\x00" * 16)
    WriteAheadLog(tmp_path / "wal-00000001.log", fsync="never").close()
    reopened = make_store(tmp_path)
    try:
        state = reopened.recover()
        assert state.generation == 1
        assert state.snapshot_journal_len == 1
    finally:
        reopened.close()


def test_torn_wal_truncated_on_recovery(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    store.append_journal(("flush_drain",))
    store.append_journal(("retract", "carol", False))
    store.close()
    wal_path = tmp_path / "wal-00000000.log"
    intact = wal_path.read_bytes()
    wal_path.write_bytes(intact + b"\x00\x00\x01")  # torn length prefix
    reopened = make_store(tmp_path)
    try:
        state = reopened.recover()
        assert state.torn_record_discarded
        assert [kind for kind, *_ in state.records] == ["journal", "journal"]
        # The tear is physically gone: later appends continue cleanly.
        assert wal_path.read_bytes() == intact
    finally:
        reopened.close()


def test_mutation_records_round_trip(tmp_path):
    db = small_db()
    store = make_store(tmp_path)
    store.recover()
    schema = RelationSchema("audit", ("who", "what"))
    store.append_mutation(("create_relation", schema))
    store.append_mutation(("insert", "audit", (("alice", "read"),)))
    store.close()
    reopened = make_store(tmp_path)
    try:
        state = reopened.recover()
        assert state.records[0] == ("ddl", schema)
        kind, relation, rows = state.records[1]
        assert (kind, relation) == ("rows", "audit")
        assert rows == [("alice", "read")]
        assert state.journal_len == 0  # mutations are not journal entries
        del db
    finally:
        reopened.close()


def test_delete_mutation_records_round_trip(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    store.append_mutation(("insert", "user", (("zoe", 7),)))
    store.append_mutation(("delete", "user", (("zoe", 7),)))
    store.close()
    reopened = make_store(tmp_path)
    try:
        state = reopened.recover()
        kind, relation, rows = state.records[1]
        assert (kind, relation) == ("del", "user")
        assert rows == [("zoe", 7)]
    finally:
        reopened.close()


def test_closed_store_refuses_appends(tmp_path):
    store = make_store(tmp_path)
    store.recover()
    store.close()
    store.close()  # idempotent
    with pytest.raises(PreconditionError):
        store.append_journal(("flush_drain",))
