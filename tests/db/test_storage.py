"""Unit tests for indexed tuple storage."""

import pytest

from repro.db import Relation, RelationSchema
from repro.errors import ArityError


@pytest.fixture
def flights() -> Relation:
    relation = Relation(RelationSchema("F", ["id", "dest"], key="id"))
    relation.insert_many([(1, "Paris"), (2, "Paris"), (3, "Athens")])
    return relation


class TestInsert:
    def test_insert_and_len(self, flights):
        assert len(flights) == 3

    def test_duplicate_ignored(self, flights):
        assert not flights.insert((1, "Paris"))
        assert len(flights) == 3

    def test_wrong_arity_rejected(self, flights):
        with pytest.raises(ArityError):
            flights.insert((1,))

    def test_insert_many_counts_new_only(self, flights):
        assert flights.insert_many([(1, "Paris"), (9, "Rome")]) == 1


class TestLookup:
    def test_contains(self, flights):
        assert flights.contains((1, "Paris"))
        assert not flights.contains((1, "Athens"))

    def test_scan_order_is_insertion(self, flights):
        assert list(flights.scan()) == [(1, "Paris"), (2, "Paris"), (3, "Athens")]

    def test_match_single_binding(self, flights):
        assert sorted(flights.match({1: "Paris"})) == [(1, "Paris"), (2, "Paris")]

    def test_match_multiple_bindings(self, flights):
        assert list(flights.match({0: 2, 1: "Paris"})) == [(2, "Paris")]

    def test_match_no_bindings_is_scan(self, flights):
        assert len(list(flights.match({}))) == 3

    def test_match_miss(self, flights):
        assert list(flights.match({1: "Rome"})) == []

    def test_index_updates_after_insert(self, flights):
        # Force the index to exist, then insert: index must stay fresh.
        assert len(list(flights.match({1: "Paris"}))) == 2
        flights.insert((4, "Paris"))
        assert len(list(flights.match({1: "Paris"}))) == 3

    def test_count_match(self, flights):
        assert flights.count_match({1: "Paris"}) == 2


class TestProjections:
    def test_distinct_values(self, flights):
        assert flights.distinct_values((1,)) == {("Paris",), ("Athens",)}

    def test_distinct_values_pairs(self, flights):
        assert len(flights.distinct_values((0, 1))) == 3

    def test_domain(self, flights):
        assert flights.domain() == {1, 2, 3, "Paris", "Athens"}


class TestCompositeIndexes:
    def test_multi_binding_probe_uses_composite_bucket(self, flights):
        assert list(flights.match({0: 2, 1: "Paris"})) == [(2, "Paris")]
        assert (0, 1) in flights._composites

    def test_composite_maintained_by_insert(self, flights):
        # Build the composite, then insert: the bucket must stay fresh
        # (incremental maintenance, not a rebuild).
        assert flights.count_match({0: 1, 1: "Paris"}) == 1
        bucket = flights._composites[(0, 1)]
        flights.insert((1, "Athens"))
        assert flights._composites[(0, 1)] is bucket
        assert list(flights.match({0: 1, 1: "Athens"})) == [(1, "Athens")]

    def test_composite_maintained_through_replicate_from(self, flights):
        replica = Relation(RelationSchema("F", ["id", "dest"], key="id"))
        replica.replicate_from(flights)
        assert replica.count_match({0: 2, 1: "Paris"}) == 1  # builds composite
        flights.insert((4, "Rome"))
        flights.insert((5, "Rome"))
        assert replica.replicate_from(flights) == 2
        assert list(replica.match({0: 4, 1: "Rome"})) == [(4, "Rome")]
        assert replica.count_match({0: 5, 1: "Rome"}) == 1
        assert list(replica.scan()) == list(flights.scan())

    def test_count_match_equals_match_stream_length(self, flights):
        flights.insert((4, "Paris"))
        for bindings in ({}, {1: "Paris"}, {0: 1}, {0: 1, 1: "Paris"},
                         {0: 99, 1: "Rome"}):
            assert flights.count_match(bindings) == len(list(flights.match(bindings)))

    def test_composite_builds_counted_in_stats(self, flights):
        from repro.db import EngineStats

        flights.stats = EngineStats()
        flights.count_match({0: 1, 1: "Paris"})
        flights.count_match({0: 2, 1: "Paris"})  # same pattern: no rebuild
        assert flights.stats.composite_indexes_built == 1

    def test_match_insertion_order_preserved(self, flights):
        flights.insert((7, "Paris"))
        assert list(flights.match({1: "Paris"})) == [
            (1, "Paris"), (2, "Paris"), (7, "Paris")
        ]


class TestEpochCaches:
    def test_distinct_values_cached_until_insert(self, flights):
        first = flights.distinct_values((1,))
        assert flights.distinct_values((1,)) is first  # cached instance
        flights.insert((4, "Rome"))
        second = flights.distinct_values((1,))
        assert second is not first
        assert ("Rome",) in second

    def test_domain_cached_until_insert(self, flights):
        first = flights.domain()
        assert flights.domain() is first
        flights.insert((4, "Rome"))
        assert "Rome" in flights.domain()
        assert flights.domain() is not first

    def test_duplicate_insert_keeps_caches(self, flights):
        first = flights.domain()
        flights.insert((1, "Paris"))  # duplicate: epoch unchanged
        assert flights.domain() is first


class TestDelete:
    """Deletion: set semantics, tombstone log, compaction fallback."""

    def test_delete_removes_and_reports(self, flights):
        assert flights.delete((2, "Paris"))
        assert not flights.contains((2, "Paris"))
        assert list(flights.scan()) == [(1, "Paris"), (3, "Athens")]

    def test_absent_delete_is_a_noop(self, flights):
        epoch = flights.write_epoch
        assert not flights.delete((9, "Rome"))
        assert flights.write_epoch == epoch  # no log entry, no bump

    def test_indexes_rebuild_after_delete(self, flights):
        assert len(list(flights.match({1: "Paris"}))) == 2
        flights.delete((1, "Paris"))
        assert list(flights.match({1: "Paris"})) == [(2, "Paris")]
        assert list(flights.match({0: 1})) == []

    def test_tombstone_appears_in_row_tail(self, flights):
        from repro.db.storage import Tombstone

        epoch = flights.write_epoch
        flights.delete((3, "Athens"))
        (entry,) = flights.row_tail(epoch)
        assert isinstance(entry, Tombstone)
        assert entry.row == (3, "Athens")

    def test_log_invariant_and_compaction(self):
        from repro.db.storage import _COMPACT_KEEP

        relation = Relation(RelationSchema("R", ["v"]))
        # Churn: insert+delete far beyond the compaction threshold.
        for i in range(3 * _COMPACT_KEEP):
            relation.insert((i,))
            relation.delete((i,))
        assert relation.write_epoch == relation.log_start + len(
            relation.row_tail(relation.log_start)
        )
        assert len(relation.row_tail(relation.log_start)) <= _COMPACT_KEEP

    def test_compacted_tail_forces_snapshot_fallback(self):
        from repro.errors import PreconditionError

        source = Relation(RelationSchema("R", ["v"]))
        replica = Relation(RelationSchema("R", ["v"]))
        replica.replicate_from(source)
        for i in range(500):
            source.insert((i,))
            if i % 2 == 0:
                source.delete((i,))
        assert source.log_start > 0
        with pytest.raises(PreconditionError):
            source.row_tail(0)
        # The replica (at epoch 0) still converges via reset_to.
        replica.replicate_from(source)
        assert list(replica.scan()) == list(source.scan())
        assert replica.write_epoch == source.write_epoch

    def test_incremental_tombstone_replication_is_byte_identical(self):
        source = Relation(RelationSchema("R", ["a", "b"]))
        replica = Relation(RelationSchema("R", ["a", "b"]))
        source.insert_many([(i, i % 3) for i in range(10)])
        replica.replicate_from(source)
        source.delete((4, 1))
        source.insert((100, 0))
        source.delete((7, 1))
        applied = replica.replicate_from(source)
        assert applied == 3
        assert list(replica.scan()) == list(source.scan())
