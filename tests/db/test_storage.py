"""Unit tests for indexed tuple storage."""

import pytest

from repro.db import Relation, RelationSchema
from repro.errors import ArityError


@pytest.fixture
def flights() -> Relation:
    relation = Relation(RelationSchema("F", ["id", "dest"], key="id"))
    relation.insert_many([(1, "Paris"), (2, "Paris"), (3, "Athens")])
    return relation


class TestInsert:
    def test_insert_and_len(self, flights):
        assert len(flights) == 3

    def test_duplicate_ignored(self, flights):
        assert not flights.insert((1, "Paris"))
        assert len(flights) == 3

    def test_wrong_arity_rejected(self, flights):
        with pytest.raises(ArityError):
            flights.insert((1,))

    def test_insert_many_counts_new_only(self, flights):
        assert flights.insert_many([(1, "Paris"), (9, "Rome")]) == 1


class TestLookup:
    def test_contains(self, flights):
        assert flights.contains((1, "Paris"))
        assert not flights.contains((1, "Athens"))

    def test_scan_order_is_insertion(self, flights):
        assert list(flights.scan()) == [(1, "Paris"), (2, "Paris"), (3, "Athens")]

    def test_match_single_binding(self, flights):
        assert sorted(flights.match({1: "Paris"})) == [(1, "Paris"), (2, "Paris")]

    def test_match_multiple_bindings(self, flights):
        assert list(flights.match({0: 2, 1: "Paris"})) == [(2, "Paris")]

    def test_match_no_bindings_is_scan(self, flights):
        assert len(list(flights.match({}))) == 3

    def test_match_miss(self, flights):
        assert list(flights.match({1: "Rome"})) == []

    def test_index_updates_after_insert(self, flights):
        # Force the index to exist, then insert: index must stay fresh.
        assert len(list(flights.match({1: "Paris"}))) == 2
        flights.insert((4, "Paris"))
        assert len(list(flights.match({1: "Paris"}))) == 3

    def test_count_match(self, flights):
        assert flights.count_match({1: "Paris"}) == 2


class TestProjections:
    def test_distinct_values(self, flights):
        assert flights.distinct_values((1,)) == {("Paris",), ("Athens",)}

    def test_distinct_values_pairs(self, flights):
        assert len(flights.distinct_values((0, 1))) == 3

    def test_domain(self, flights):
        assert flights.domain() == {1, 2, 3, "Paris", "Athens"}
