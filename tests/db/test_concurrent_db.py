"""Database thread-safety: the reader–writer lock and its invariants.

The shared :class:`~repro.db.Database` is the one structure every shard
worker touches concurrently, guarded by
:class:`~repro.concurrency.RWLock`.  These tests pin the lock's
semantics (concurrent readers, exclusive writers, nesting safety) and
stress the facade from reader and writer threads at once.
"""

import threading
import time

from repro.concurrency import OwnedLock, RWLock
from repro.db import ConjunctiveQuery, DatabaseBuilder
from repro.logic import Atom, Variable


def _flights_db(rows):
    builder = DatabaseBuilder().table(
        "Flights", ["flightId", "destination"], key="flightId"
    )
    builder.rows("Flights", rows)
    return builder.build()


# ---------------------------------------------------------------------------
# RWLock semantics
# ---------------------------------------------------------------------------
def test_readers_share_the_lock():
    lock = RWLock()
    inside = threading.Barrier(3, timeout=30)

    def reader():
        with lock.read():
            inside.wait()  # all three readers in simultaneously

    threads = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()


def test_writer_excludes_readers_and_writers():
    lock = RWLock()
    order = []
    in_write = threading.Event()
    release = threading.Event()

    def writer():
        with lock.write():
            in_write.set()
            release.wait(timeout=30)
            order.append("write-done")

    def reader():
        with lock.read():
            order.append("read")

    w = threading.Thread(target=writer, daemon=True)
    w.start()
    assert in_write.wait(timeout=30)
    r = threading.Thread(target=reader, daemon=True)
    r.start()
    time.sleep(0.05)
    assert order == []  # reader blocked behind the writer
    release.set()
    w.join(timeout=30)
    r.join(timeout=30)
    assert order == ["write-done", "read"]


def test_nested_reads_do_not_deadlock_against_a_waiting_writer():
    lock = RWLock()
    done = threading.Event()
    reader_in = threading.Event()
    reader_go = threading.Event()

    def reader():
        with lock.read():
            reader_in.set()
            assert reader_go.wait(timeout=30)
            with lock.read():  # nested while a writer is waiting
                pass
        done.set()

    def writer():
        assert reader_in.wait(timeout=30)
        reader_go.set()
        with lock.write():
            pass

    threads = [
        threading.Thread(target=reader, daemon=True),
        threading.Thread(target=writer, daemon=True),
    ]
    for thread in threads:
        thread.start()
    assert done.wait(timeout=30), "nested read deadlocked against writer"
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()


def test_write_lock_is_reentrant_and_allows_inner_reads():
    lock = RWLock()
    with lock.write():
        with lock.write():
            with lock.read():
                pass
    # Fully released afterwards: another thread can write immediately.
    acquired = threading.Event()

    def writer():
        with lock.write():
            acquired.set()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    assert acquired.wait(timeout=30)
    thread.join(timeout=30)


def test_owned_lock_reports_foreign_holder():
    lock = OwnedLock()
    holding = threading.Event()
    release = threading.Event()

    def hold():
        with lock:
            holding.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=hold, daemon=True)
    thread.start()
    assert holding.wait(timeout=30)
    assert lock.held_elsewhere
    release.set()
    thread.join(timeout=30)
    assert not lock.held_elsewhere
    with lock:
        assert not lock.held_elsewhere  # own holds don't count


# ---------------------------------------------------------------------------
# Database facade under concurrent readers and writers
# ---------------------------------------------------------------------------
def test_concurrent_queries_and_inserts_stay_consistent():
    db = _flights_db([(i, f"city{i % 7}") for i in range(50)])
    query = ConjunctiveQuery(
        (Atom("Flights", [Variable("f"), "city3"]),)
    )
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                solution = db.first_solution(query)
                assert solution is not None
                assert db.contains("Flights", (3, "city3"))
                db.sizes()
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    readers = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
    for thread in readers:
        thread.start()
    try:
        for i in range(50, 250):
            db.insert("Flights", (i, f"city{i % 7}"))
    finally:
        stop.set()
    for thread in readers:
        thread.join(timeout=30)
        assert not thread.is_alive()
    assert not errors, errors
    assert db.sizes()["Flights"] == 250
    # Index probes built mid-stream by racing readers stay correct.
    assert sorted(r[0] for r in db.relation("Flights").match({1: "city3"})) == [
        i for i in range(250) if i % 7 == 3
    ]


def test_data_versions_advance_monotonically_under_writes():
    db = _flights_db([(1, "a")])
    before = db.data_versions()
    db.insert("Flights", (2, "b"))
    db.insert("Flights", (2, "b"))  # duplicate: no epoch bump
    after = db.data_versions()
    assert after["Flights"] == before["Flights"] + 1
    assert db.data_version() == sum(after.values())
