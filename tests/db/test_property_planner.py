"""Property-based tests: compiled plans against a scan-and-filter reference.

Where ``test_property_evaluator`` checks the join machinery against a
model checker over the active domain, this suite targets the planner
stack specifically: random queries (including three-column atoms whose
bound patterns exercise composite indexes) are evaluated through the
compiled-plan evaluator and through a naive scan-and-filter join that
uses no indexes, no plan cache and no join reordering.  The solution
*sets* must agree — under initial bindings, and across interleaved
inserts that force the plan cache through its revalidate/recompile
paths.
"""

from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import ConjunctiveQuery, Database
from repro.logic import Atom, Constant, Variable

_VALUES = [0, 1, 2]
_VARS = [Variable(n) for n in ("x", "y", "z")]

_relations = st.fixed_dictionaries(
    {
        "A": st.sets(
            st.tuples(st.sampled_from(_VALUES), st.sampled_from(_VALUES)),
            max_size=6,
        ),
        "B": st.sets(st.tuples(st.sampled_from(_VALUES)), max_size=3),
        "C": st.sets(
            st.tuples(
                st.sampled_from(_VALUES),
                st.sampled_from(_VALUES),
                st.sampled_from(_VALUES),
            ),
            max_size=8,
        ),
    }
)

_terms = st.one_of(
    st.sampled_from(_VARS),
    st.sampled_from([Constant(v) for v in _VALUES]),
)

_atoms = st.one_of(
    st.tuples(_terms, _terms).map(lambda ts: Atom("A", list(ts))),
    _terms.map(lambda t: Atom("B", [t])),
    st.tuples(_terms, _terms, _terms).map(lambda ts: Atom("C", list(ts))),
)

_queries = st.lists(_atoms, min_size=1, max_size=4).map(
    lambda atoms: ConjunctiveQuery(atoms)
)

_initials = st.dictionaries(
    st.sampled_from(_VARS + [Variable("w")]),
    st.sampled_from(_VALUES),
    max_size=2,
)

_extra_rows = st.lists(
    st.one_of(
        st.tuples(
            st.just("A"),
            st.tuples(st.sampled_from(_VALUES), st.sampled_from(_VALUES)),
        ),
        st.tuples(st.just("B"), st.tuples(st.sampled_from(_VALUES))),
        st.tuples(
            st.just("C"),
            st.tuples(
                st.sampled_from(_VALUES),
                st.sampled_from(_VALUES),
                st.sampled_from(_VALUES),
            ),
        ),
    ),
    max_size=4,
)


def _build_db(data: Dict[str, Set[Tuple]]) -> Database:
    db = Database()
    db.create_relation("A", ["a1", "a2"])
    db.create_relation("B", ["b1"])
    db.create_relation("C", ["c1", "c2", "c3"])
    for name in ("A", "B", "C"):
        db.insert_many(name, sorted(data[name]))
    return db


def _scan_filter_solutions(
    db: Database,
    query: ConjunctiveQuery,
    initial: Optional[Dict[Variable, int]] = None,
) -> Set[FrozenSet]:
    """Reference join: full scan + filter per atom, body order, no indexes."""
    atoms = list(query.atoms)

    def extend(bound: Dict, atom: Atom, row: Tuple) -> Optional[Dict]:
        out = dict(bound)
        for position, term in enumerate(atom.terms):
            value = row[position]
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif term in out:
                if out[term] != value:
                    return None
            else:
                out[term] = value
        return out

    def search(i: int, bound: Dict) -> Iterator[Dict]:
        if i == len(atoms):
            yield bound
            return
        atom = atoms[i]
        for row in db.rows(atom.relation):
            extended = extend(bound, atom, row)
            if extended is not None:
                yield from search(i + 1, extended)

    return {
        frozenset(solution.items())
        for solution in search(0, dict(initial) if initial else {})
    }


def _compiled_solutions(
    db: Database,
    query: ConjunctiveQuery,
    initial: Optional[Dict[Variable, int]] = None,
) -> Set[FrozenSet]:
    with db.rw.read():
        return {
            frozenset(solution.items())
            for solution in db._evaluator.solutions(query, initial=initial)
        }


@given(_relations, _queries)
@settings(max_examples=300, deadline=None)
def test_compiled_plans_match_scan_and_filter(data, query):
    db = _build_db(data)
    assert _compiled_solutions(db, query) == _scan_filter_solutions(db, query)


@given(_relations, _queries, _initials)
@settings(max_examples=150, deadline=None)
def test_compiled_plans_match_reference_under_initial_bindings(
    data, query, initial
):
    db = _build_db(data)
    got = _compiled_solutions(db, query, initial=initial)
    expected = _scan_filter_solutions(db, query, initial=initial)
    assert got == expected


@given(_relations, _queries, _extra_rows)
@settings(max_examples=150, deadline=None)
def test_plan_cache_stays_correct_across_inserts(data, query, extra):
    """Evaluate, mutate, evaluate: the cached plan must revalidate or
    recompile, never serve stale answers."""
    db = _build_db(data)
    assert _compiled_solutions(db, query) == _scan_filter_solutions(db, query)
    for name, row in extra:
        db.insert(name, row)
    assert _compiled_solutions(db, query) == _scan_filter_solutions(db, query)


@given(_relations, _queries)
@settings(max_examples=100, deadline=None)
def test_independent_instances_enumerate_identically(data, query):
    """Two databases built from the same data (independent plan caches,
    different compile times) must yield the same solutions in the same
    order — the determinism the replicated backends rely on."""
    new_row = next(iter(sorted(data["A"])), (0, 0))
    warm = _build_db(data)
    list(warm.solutions(query))  # compile early on one instance only
    warm.insert("A", new_row)  # may be a duplicate: epoch paths differ
    fresh = _build_db(data)
    fresh.insert("A", new_row)
    assert [
        sorted(s.items(), key=lambda kv: str(kv[0]))
        for s in warm.solutions(query)
    ] == [
        sorted(s.items(), key=lambda kv: str(kv[0]))
        for s in fresh.solutions(query)
    ]
