"""Unit tests for database persistence (JSON specs and CSV)."""

import json

import pytest

from repro.db import (
    DatabaseBuilder,
    database_from_spec,
    database_to_spec,
    load_csv_table,
    load_database,
    save_csv_table,
    save_database,
)
from repro.db import Database
from repro.errors import SchemaError


def _sample_db():
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich"), (102, "Paris")])
        .table("Friends", ["user", "friend"])
        .rows("Friends", [("a", "b")])
        .build()
    )


class TestJsonSpec:
    def test_round_trip_in_memory(self):
        db = _sample_db()
        spec = database_to_spec(db)
        again = database_from_spec(spec)
        assert again.sizes() == db.sizes()
        assert again.rows("Flights") == db.rows("Flights")
        assert again.schema.get("Flights").key == "flightId"

    def test_round_trip_via_file(self, tmp_path):
        db = _sample_db()
        path = tmp_path / "db.json"
        save_database(db, path)
        again = load_database(path)
        assert again.rows("Friends") == [("a", "b")]

    def test_spec_is_plain_json(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(_sample_db(), path)
        spec = json.loads(path.read_text())
        assert {t["name"] for t in spec["tables"]} == {"Flights", "Friends"}

    def test_malformed_spec_rejected(self):
        with pytest.raises(SchemaError):
            database_from_spec({"nope": []})
        with pytest.raises(SchemaError):
            database_from_spec({"tables": [{"name": "X"}]})

    def test_empty_rows_allowed(self):
        db = database_from_spec(
            {"tables": [{"name": "T", "attributes": ["a"]}]}
        )
        assert db.sizes() == {"T": 0}


class TestCsv:
    def test_load_with_type_coercion(self, tmp_path):
        path = tmp_path / "flights.csv"
        path.write_text("flightId,destination\n101,Zurich\n102,Paris\n")
        db = Database()
        inserted = load_csv_table(db, "Flights", path, key="flightId")
        assert inserted == 2
        assert db.contains("Flights", (101, "Zurich"))  # int coerced

    def test_custom_coercion(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        db = Database()
        load_csv_table(db, "T", path, coerce=str)
        assert db.contains("T", ("1",))
        assert not db.contains("T", (1,))

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            load_csv_table(Database(), "T", path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv_table(Database(), "T", path)

    def test_save_round_trip(self, tmp_path):
        db = _sample_db()
        path = tmp_path / "out.csv"
        written = save_csv_table(db, "Flights", path)
        assert written == 2
        again = Database()
        load_csv_table(again, "Flights", path, key="flightId")
        assert again.rows("Flights") == db.rows("Flights")

    def test_loaded_table_queryable(self, tmp_path):
        from repro.db import ConjunctiveQuery
        from repro.logic import Atom, var

        path = tmp_path / "flights.csv"
        path.write_text("flightId,destination\n7,Rome\n")
        db = Database()
        load_csv_table(db, "Flights", path, key="flightId")
        solution = db.first_solution(
            ConjunctiveQuery([Atom("Flights", [var("x"), "Rome"])])
        )
        assert solution[var("x")] == 7
