"""Unit tests for the plan compiler and plan cache."""

from repro.db import Database, EngineStats, compile_plan
from repro.db.evaluator import Evaluator
from repro.db.query import ConjunctiveQuery
from repro.logic import Atom, var


def _db() -> Database:
    db = Database()
    db.create_relation("F", ["id", "dest"])
    db.insert_many("F", [(1, "Paris"), (2, "Paris"), (3, "Athens")])
    db.create_relation("H", ["id", "loc"])
    db.insert_many("H", [(10, "Paris"), (11, "Athens")])
    return db


class TestPlanCache:
    def test_same_shape_different_constants_share_one_plan(self):
        db = _db()
        planner = db._evaluator.planner
        q_paris = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        q_athens = ConjunctiveQuery([Atom("F", [var("y"), "Athens"])])
        assert q_paris.shape() == q_athens.shape()
        plan = planner.plan_for(q_paris)
        assert planner.plan_for(q_athens) is plan
        assert planner.cached_plans() == 1

    def test_hit_and_miss_counters(self):
        db = _db()
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        before = db.stats.snapshot()
        list(db.solutions(query))
        list(db.solutions(query))
        delta = db.stats.delta(before)
        assert delta.plan_cache_misses == 1
        assert delta.plan_cache_hits == 1

    def test_duplicate_insert_keeps_plan(self):
        db = _db()
        planner = db._evaluator.planner
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        plan = planner.plan_for(query)
        db.insert("F", (1, "Paris"))  # duplicate: no write, no epoch bump
        assert planner.plan_for(query) is plan

    def test_size_class_change_recompiles(self):
        db = _db()
        planner = db._evaluator.planner
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        plan = planner.plan_for(query)
        # Push F from 3 rows (size class 2) past 4 (size class 3).
        db.insert_many("F", [(4, "Rome"), (5, "Rome"), (6, "Rome")])
        new_plan = planner.plan_for(query)
        assert new_plan is not plan
        misses = db.stats.plan_cache_misses
        assert misses >= 2

    def test_epoch_move_without_signature_change_refreshes(self):
        db = _db()
        db.create_relation("G", ["a", "b"])
        db.insert_many("G", [(i, i % 2) for i in range(5)])  # size class 3
        planner = db._evaluator.planner
        query = ConjunctiveQuery([Atom("G", [var("x"), 0])])
        plan = planner.plan_for(query)
        db.insert("G", (5, 1))  # 6 rows: still size class 3, 6 distinct keys
        assert planner.plan_for(query) is plan  # revalidated, not recompiled
        assert db.stats.plan_cache_hits >= 1


class TestJoinOrdering:
    def test_statistics_pick_the_selective_atom_first(self):
        db = Database()
        db.create_relation("Big", ["x", "t"])
        db.insert_many("Big", [(i, i % 2) for i in range(64)])
        db.create_relation("Sel", ["x", "t"])
        db.insert_many("Sel", [(i, i) for i in range(64)])
        query = ConjunctiveQuery(
            [Atom("Big", [var("x"), 0]), Atom("Sel", [var("x"), 8])]
        )
        plan = db._evaluator.planner.plan_for(query)
        # Sel's constant hits a 64-way distinct column (est ~ 1 row);
        # Big's constant hits a 2-way column (est ~ 32 rows).
        assert plan.join_order() == (1, 0)
        assert [s[var("x")] for s in db.solutions(query)] == [8]

    def test_plans_deterministic_across_instances(self):
        dbs = [_db(), _db()]
        query = ConjunctiveQuery(
            [
                Atom("F", [var("f"), var("city")]),
                Atom("H", [var("h"), var("city")]),
            ]
        )
        plans = [d._evaluator.planner.plan_for(query) for d in dbs]
        assert plans[0].join_order() == plans[1].join_order()
        assert plans[0].signature == plans[1].signature
        results = [list(d.solutions(query)) for d in dbs]
        assert results[0] == results[1]

    def test_compile_is_pure_function_of_shape_and_data(self):
        db = _db()
        query = ConjunctiveQuery(
            [
                Atom("F", [var("f"), var("city")]),
                Atom("H", [var("h"), var("city")]),
            ]
        )
        shape = query.shape()
        a = compile_plan(shape, db._relations)
        b = compile_plan(shape, db._relations)
        assert a.join_order() == b.join_order()
        assert a.signature == b.signature


class TestDegenerateRelations:
    def test_empty_relation_short_circuits(self):
        db = _db()
        db.create_relation("Empty", ["a"])
        query = ConjunctiveQuery(
            [Atom("F", [var("x"), "Paris"]), Atom("Empty", [var("x")])]
        )
        plan = db._evaluator.planner.plan_for(query)
        assert plan.has_empty_atom
        assert not db.is_satisfiable(query)

    def test_empty_relation_recompiles_when_filled(self):
        db = _db()
        db.create_relation("Empty", ["a"])
        query = ConjunctiveQuery(
            [Atom("F", [var("x"), "Paris"]), Atom("Empty", [var("x")])]
        )
        assert not db.is_satisfiable(query)
        db.insert("Empty", (2,))
        assert [s[var("x")] for s in db.solutions(query)] == [2]

    def test_missing_relation_yields_nothing_at_evaluator_level(self):
        evaluator = Evaluator({}, EngineStats())
        query = ConjunctiveQuery([Atom("Ghost", [var("x")])])
        assert list(evaluator.solutions(query)) == []
        plan = compile_plan(query.shape(), {})
        assert plan.has_empty_atom


class TestExecutionSemantics:
    def test_initial_binding_restricts_search(self):
        db = _db()
        query = ConjunctiveQuery([Atom("F", [var("x"), var("city")])])
        got = db.first_solution(query, initial={var("city"): "Athens"})
        assert got == {var("x"): 3, var("city"): "Athens"}

    def test_initial_binding_unrelated_variable_passes_through(self):
        db = _db()
        query = ConjunctiveQuery([Atom("F", [var("x"), "Athens"])])
        got = db.first_solution(query, initial={var("other"): 99})
        assert got == {var("x"): 3, var("other"): 99}

    def test_initial_binding_with_no_match_fails(self):
        db = _db()
        query = ConjunctiveQuery([Atom("F", [var("x"), var("city")])])
        assert db.first_solution(query, initial={var("city"): "Rome"}) is None

    def test_repeated_variable_within_atom(self):
        db = Database()
        db.create_relation("P", ["a", "b"])
        db.insert_many("P", [(1, 1), (1, 2), (3, 3)])
        query = ConjunctiveQuery([Atom("P", [var("x"), var("x")])])
        assert {s[var("x")] for s in db.solutions(query)} == {1, 3}

    def test_repeated_variable_across_atoms_uses_composite_probe(self):
        db = Database()
        db.create_relation("E", ["src", "dst"])
        db.insert_many("E", [(i, j) for i in range(8) for j in range(8)])
        y = var("y")
        query = ConjunctiveQuery([Atom("E", [2, y]), Atom("E", [y, 2])])
        before = db.stats.snapshot()
        assert len(list(db.solutions(query))) == 8
        delta = db.stats.delta(before)
        assert delta.composite_indexes_built == 1
        assert delta.index_probes >= 8
        # The second atom examines exactly its 1-row buckets, not the
        # 8-row single-column candidates the residual filter would scan.
        assert delta.tuples_examined == 16

    def test_solutions_match_order_of_insertion(self):
        db = _db()
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        assert [s[var("x")] for s in db.solutions(query)] == [1, 2]
