"""Round-trip property tests for the process-executor wire codec.

Everything the router and a shard worker process exchange must survive
the trip through :mod:`repro.db.wire` byte-exactly: database values of
every supported type, relation schemas, row tails, stamp vectors,
entangled queries, coordination results, and the service's journal
records (the crash-replay format).  Framing errors must fail loudly
with :class:`~repro.errors.WireError`, never mis-decode.
"""

import math
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoordinatingSet, CoordinationResult, EntangledQuery
from repro.db import CoordinationStats, Database, DatabaseBuilder, RelationSchema, wire
from repro.errors import WireError
from repro.logic import Atom, Constant, Variable
from repro.workloads import partner_query

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
scalars = (
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
)
values = st.recursive(
    scalars, lambda children: st.lists(children, max_size=3).map(tuple), max_leaves=8
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_",
    min_size=1,
    max_size=8,
)
variables = st.builds(Variable, names, names | st.just(""))
terms = variables | values.map(Constant)
atoms = st.builds(
    Atom, names, st.lists(terms, max_size=4)
)


# ---------------------------------------------------------------------------
# Values and frames
# ---------------------------------------------------------------------------
@given(values)
def test_value_round_trip(value):
    assert wire.decode_value(wire.encode_value(value)) == value


@given(values)
def test_framed_message_round_trip(value):
    message = {"op": "probe", "payload": wire.encode_value(value)}
    assert wire.loads(wire.dumps(message)) == message


def test_non_finite_floats_round_trip():
    for special in (float("inf"), float("-inf")):
        assert wire.decode_value(wire.encode_value(special)) == special
    decoded = wire.decode_value(wire.encode_value(float("nan")))
    assert math.isnan(decoded)


def _frame_with_valid_crc(payload: bytes) -> bytes:
    """A hand-built frame whose CRC header matches ``payload``."""
    crc = zlib.crc32(payload).to_bytes(4, "big")
    return wire.MAGIC + bytes((wire.VERSION,)) + crc + payload


def test_unsupported_values_and_corrupt_frames_raise():
    with pytest.raises(WireError):
        wire.encode_value({"a": 1})
    with pytest.raises(WireError):
        wire.encode_value(frozenset({1}))
    with pytest.raises(WireError):
        wire.loads(b"XX\x01\x00\x00\x00\x00{}")  # wrong magic
    with pytest.raises(WireError):
        wire.loads(wire.MAGIC + bytes((wire.VERSION,)))  # short header
    with pytest.raises(WireError):
        wire.loads(
            wire.MAGIC + bytes((wire.VERSION + 1,)) + b"\x00\x00\x00\x00{}"
        )
    with pytest.raises(WireError):
        # Valid CRC over an invalid payload: the JSON layer must still
        # reject it (the CRC guards transport, not well-formedness).
        wire.loads(_frame_with_valid_crc(b"{not json"))
    with pytest.raises(WireError):
        wire.dumps({"raw-object": object()})


# ---------------------------------------------------------------------------
# Version negotiation: a peer speaking any other wire version must be
# rejected with a clear diagnostic, never a decode crash or garbage.
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=255))
def test_foreign_version_bytes_rejected_with_clear_error(version):
    frame = bytearray(wire.dumps({"op": "ping"}))
    frame[2] = version
    if version == wire.VERSION:
        assert wire.loads(bytes(frame)) == {"op": "ping"}
        return
    with pytest.raises(WireError, match="version mismatch") as info:
        wire.loads(bytes(frame))
    # The error names both sides of the mismatch — an operator pairing
    # a new router with an old shard host needs the numbers, not a
    # generic "corrupt frame".
    assert str(version) in str(info.value)
    assert str(wire.VERSION) in str(info.value)


def test_older_and_newer_peers_rejected_before_payload_decode():
    # The version check happens before CRC/JSON decoding: a frame from
    # a different version with a garbage body still earns the version
    # diagnostic, not a CRC or JSON error.
    for foreign in (1, wire.VERSION - 1, wire.VERSION + 1, 255):
        if foreign == wire.VERSION:
            continue
        frame = wire.MAGIC + bytes((foreign,)) + b"\xff\xff\xff\xff{nope"
        with pytest.raises(WireError, match="version mismatch"):
            wire.loads(frame)


@given(st.binary(max_size=80))
def test_arbitrary_bytes_never_crash_the_decoder(data):
    """Frame fuzz: any byte string decodes or raises WireError, only."""
    try:
        wire.loads(data)
    except WireError:
        pass


@given(values, st.data())
def test_flipped_byte_fails_crc(value, data):
    """Any single flipped byte raises a decode error, never garbage.

    The WAL reuses these frames, so at-rest corruption anywhere in a
    frame — header or payload — must surface as :class:`WireError` at
    recovery time instead of decoding into a plausible-looking record.
    """
    frame = bytearray(wire.dumps({"payload": wire.encode_value(value)}))
    index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[index] ^= flip
    with pytest.raises(WireError):
        wire.loads(bytes(frame))


# ---------------------------------------------------------------------------
# Schemas, rows, stamps
# ---------------------------------------------------------------------------
@given(
    names,
    st.lists(names, min_size=1, max_size=5, unique=True),
    st.booleans(),
)
def test_schema_round_trip(name, attributes, keyed):
    schema = RelationSchema(name, attributes, attributes[0] if keyed else None)
    assert wire.decode_schema(wire.encode_schema(schema)) == schema


@given(st.lists(st.lists(values, min_size=2, max_size=2).map(tuple), max_size=6))
def test_rows_round_trip(rows):
    assert wire.decode_rows(wire.encode_rows(rows)) == rows


@given(st.dictionaries(names, st.integers(min_value=0), max_size=5))
def test_stamp_vector_round_trip(stamps):
    assert wire.decode_stamps(wire.encode_stamps(stamps)) == stamps


# ---------------------------------------------------------------------------
# Queries, assignments, results
# ---------------------------------------------------------------------------
@given(
    names,
    st.lists(atoms, max_size=2),
    st.lists(atoms, min_size=1, max_size=2),
    st.lists(atoms, max_size=2),
)
def test_query_round_trip(name, post, head, body):
    query = EntangledQuery(name, post, head, body)
    assert wire.decode_query(wire.encode_query(query)) == query


@given(st.dictionaries(variables, values, max_size=5))
def test_assignment_round_trip(assignment):
    assert wire.decode_assignment(wire.encode_assignment(assignment)) == assignment


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.lists(names, min_size=1, max_size=3, unique=True),
            st.dictionaries(variables, values, max_size=3),
        ),
        min_size=1,
        max_size=3,
    ),
    st.integers(min_value=0, max_value=99),
)
def test_result_round_trip(raw_sets, db_queries):
    candidates = [
        CoordinatingSet(tuple(members), assignment)
        for members, assignment in raw_sets
    ]
    stats = CoordinationStats(db_queries=db_queries)
    stats.extra["rounds"] = 3
    result = CoordinationResult(
        chosen=candidates[0], candidates=candidates, stats=stats
    )
    decoded = wire.decode_result(wire.encode_result(result))
    assert decoded.chosen == result.chosen
    assert decoded.candidates == result.candidates
    assert decoded.stats.db_queries == db_queries
    assert decoded.stats.extra == {"rounds": 3}
    assert wire.decode_result(wire.encode_result(None)) is None
    no_chosen = CoordinationResult(chosen=None)
    assert wire.decode_result(wire.encode_result(no_chosen)).chosen is None


# ---------------------------------------------------------------------------
# Replica sync payloads
# ---------------------------------------------------------------------------
def _authoritative() -> Database:
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich"), (102, "Paris")])
        .table("Empty", ["x"])
        .build()
    )


def test_sync_payload_replicates_byte_identically():
    source = _authoritative()
    replica = Database(synchronized=False)
    payload, stamps = wire.build_sync(source, {})
    applied = wire.apply_sync(replica, wire.loads(wire.dumps(payload)))
    assert applied == 2
    assert replica.sizes() == source.sizes()
    assert replica.rows("Flights") == source.rows("Flights")
    assert "Empty" in replica  # DDL propagates even for empty relations
    assert stamps == source.data_versions()

    # Nothing changed: no payload, stamps unchanged.
    payload, stamps2 = wire.build_sync(source, stamps)
    assert payload is None and stamps2 == stamps

    # Incremental tail: only the changed relation rides the wire.
    source.insert("Flights", (103, "Athens"))
    source.create_relation("Hotels", ["name", "city"])
    source.insert("Hotels", ("Dolder", "Zurich"))
    payload, stamps3 = wire.build_sync(source, stamps)
    synced = {record["schema"]["name"] for record in payload["relations"]}
    assert synced == {"Flights", "Hotels"}
    flights_tail = next(
        r for r in payload["relations"] if r["schema"]["name"] == "Flights"
    )
    assert flights_tail["start"] == 2 and len(flights_tail["rows"]) == 1
    wire.apply_sync(replica, payload)
    assert replica.sizes() == source.sizes()
    assert replica.rows("Flights") == source.rows("Flights")
    assert replica.rows("Hotels") == source.rows("Hotels")
    assert stamps3 == source.data_versions()


def test_sync_ships_deletions_as_tombstone_tails():
    source = _authoritative()
    replica = Database(synchronized=False)
    payload, stamps = wire.build_sync(source, {})
    wire.apply_sync(replica, wire.loads(wire.dumps(payload)))

    # A deletion rides the incremental tail as a tombstone entry and
    # replays byte-identically (same surviving rows, same order).
    source.delete("Flights", (101, "Zurich"))
    source.insert("Flights", (103, "Athens"))
    payload, stamps2 = wire.build_sync(source, stamps)
    applied = wire.apply_sync(replica, wire.loads(wire.dumps(payload)))
    assert applied == 2
    assert replica.rows("Flights") == source.rows("Flights")
    assert list(replica.relation("Flights").scan()) == list(
        source.relation("Flights").scan()
    )
    assert stamps2 == source.data_versions()

    # Compacted-away tail: the payload falls back to a full reset
    # snapshot and the replica still converges byte-identically.
    for i in range(600):
        source.insert("Flights", (1000 + i, "Churn"))
        source.delete("Flights", (1000 + i, "Churn"))
    payload, stamps3 = wire.build_sync(source, stamps2)
    wire.apply_sync(replica, wire.loads(wire.dumps(payload)))
    assert list(replica.relation("Flights").scan()) == list(
        source.relation("Flights").scan()
    )
    assert stamps3 == source.data_versions()


def test_sync_detects_missing_record_via_stamp_vector():
    # A payload whose stamp vector promises an epoch its records cannot
    # deliver (a dropped record) must fail loudly after apply.
    source = _authoritative()
    replica = Database(synchronized=False)
    payload, _ = wire.build_sync(source, {})
    payload["relations"] = [
        r for r in payload["relations"] if r["schema"]["name"] != "Flights"
    ]
    with pytest.raises(WireError):
        wire.apply_sync(replica, payload)


def test_sync_detects_desynced_replica():
    source = _authoritative()
    replica = Database(synchronized=False)
    payload, _ = wire.build_sync(source, {})
    wire.apply_sync(replica, payload)
    # A replica that drifted (extra local row) must fail loudly.
    replica.relation("Flights").insert((999, "Nowhere"))
    source.insert("Flights", (104, "Oslo"))
    payload, _ = wire.build_sync(source, {"Flights": 2, "Empty": 0})
    with pytest.raises(WireError):
        wire.apply_sync(replica, payload)


# ---------------------------------------------------------------------------
# Journal records (crash-replay format)
# ---------------------------------------------------------------------------
def test_journal_round_trip():
    queries = [
        partner_query("alice", ["bob"]),
        partner_query("bob", ["alice"]),
        partner_query("carol", []),
    ]
    journal = [
        ("submit", queries[0], False),
        ("submit_many", (queries[1], queries[2])),
        ("retract", "carol", False),
        ("insert", "Members", ("dave", "region", "interest", 3)),
        ("flush",),
        ("flush_drain",),
        ("submit", queries[2], True),
    ]
    encoded = wire.loads(wire.dumps(wire.encode_journal(journal)))
    assert wire.decode_journal(encoded) == journal


def test_journal_rejects_unknown_records():
    with pytest.raises(WireError):
        wire.encode_journal([("compact",)])
    with pytest.raises(WireError):
        wire.decode_journal([{"op": "compact"}])
