"""Storage backends: replica sync protocol and versioned invalidation.

Unit-level pins for :mod:`repro.db.backend`: the shared backend is a
pass-through, the replicated backend lazily syncs per-shard lock-free
replicas by diffing per-relation ``data_versions`` stamps, the write
token gates re-sync (no shared lock on the untouched fast path), and
evaluation against a replica is byte-identical to evaluating against
the authoritative store.
"""

import pytest

from repro.concurrency import NullRWLock, RWLock
from repro.db import (
    ConjunctiveQuery,
    Database,
    DatabaseBuilder,
    ReplicatedBackend,
    SharedBackend,
    resolve_backend,
)
from repro.db.schema import RelationSchema
from repro.db.storage import Relation
from repro.errors import PreconditionError
from repro.logic import Atom, Variable


def _flights_db(rows):
    builder = DatabaseBuilder().table(
        "Flights", ["flightId", "destination"], key="flightId"
    )
    builder.rows("Flights", rows)
    return builder.build()


# ---------------------------------------------------------------------------
# Relation.replicate_from: the append-only tail copy
# ---------------------------------------------------------------------------
def test_replicate_from_copies_only_the_new_tail_in_order():
    schema = RelationSchema("R", ["a", "b"])
    source, mirror = Relation(schema), Relation(schema)
    source.insert_many([(1, "x"), (2, "y")])
    assert mirror.replicate_from(source) == 2
    source.insert_many([(3, "z"), (4, "w")])
    assert mirror.replicate_from(source) == 2  # only the tail
    assert list(mirror.scan()) == list(source.scan())  # same order
    assert mirror.replicate_from(source) == 0  # idempotent when caught up


# ---------------------------------------------------------------------------
# NullRWLock: the lock-free stand-in
# ---------------------------------------------------------------------------
def test_null_rwlock_is_a_noop_with_rwlock_shape():
    lock = NullRWLock()
    with lock.read():
        with lock.write():  # nesting never deadlocks; nothing is tracked
            assert lock.read_count == 0
    db = Database(synchronized=False)
    assert isinstance(db.rw, NullRWLock)
    assert isinstance(Database().rw, RWLock)


# ---------------------------------------------------------------------------
# SharedBackend: pass-through
# ---------------------------------------------------------------------------
def test_shared_backend_reader_returns_the_authoritative_store():
    db = _flights_db([(1, "Zurich")])
    backend = SharedBackend(db)
    assert backend.reader(0).acquire() is db
    assert backend.reader(3).acquire() is db


# ---------------------------------------------------------------------------
# ReplicatedBackend: sync, laziness, invalidation
# ---------------------------------------------------------------------------
def test_replica_mirrors_content_and_evaluates_identically():
    db = _flights_db([(i, f"city{i % 3}") for i in range(20)])
    backend = ReplicatedBackend(db)
    replica = backend.reader(0).acquire()
    assert replica is not db
    assert replica.sizes() == db.sizes()
    query = ConjunctiveQuery((Atom("Flights", [Variable("f"), "city1"]),))
    assert replica.first_solution(query) == db.first_solution(query)
    assert replica.rows("Flights") == db.rows("Flights")
    assert replica.domain() == db.domain()


def test_fast_path_skips_sync_until_a_write_lands():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    reader = backend.reader(0)
    reader.acquire()
    assert backend.replica_stats()[0]["syncs"] == 1
    reader.acquire()  # token unchanged: no sync pass at all
    assert backend.replica_stats()[0]["syncs"] == 1
    db.insert("Flights", (2, "b"))
    reader.acquire()
    assert backend.replica_stats()[0]["syncs"] == 2


def test_sync_copies_only_changed_relations_tails():
    db = (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .table("Hotels", ["hotelId", "city"], key="hotelId")
        .rows("Flights", [(i, "z") for i in range(50)])
        .rows("Hotels", [(i, "z") for i in range(50)])
        .build()
    )
    backend = ReplicatedBackend(db)
    reader = backend.reader(0)
    reader.acquire()
    copied_initial = backend.replica_stats()[0]["rows_copied"]
    assert copied_initial == 100
    db.insert("Hotels", (50, "q"))  # one relation, one row
    replica = reader.acquire()
    assert backend.replica_stats()[0]["rows_copied"] == copied_initial + 1
    assert replica.sizes() == db.sizes()


def test_duplicate_insert_does_not_invalidate_replicas():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    reader = backend.reader(0)
    reader.acquire()
    assert not db.insert("Flights", (1, "a"))  # duplicate: no data change
    reader.acquire()
    assert backend.replica_stats()[0]["syncs"] == 1


def test_create_relation_propagates_to_replicas():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    reader = backend.reader(0)
    reader.acquire()
    db.create_relation("Trains", ["trainId", "destination"])
    replica = reader.acquire()
    assert "Trains" in replica
    # An empty new relation validates (and yields no solutions), exactly
    # like the authoritative store.
    query = ConjunctiveQuery((Atom("Trains", [Variable("t"), "a"]),))
    assert replica.first_solution(query) is None


def test_attach_relation_on_the_authoritative_store_invalidates_too():
    # Both DDL declaration paths must reach the invalidation token; a
    # replica evaluating a query over the new relation before any row
    # exists must see it (empty), not raise UnknownRelationError.
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    reader = backend.reader(0)
    reader.acquire()
    db.attach_relation(RelationSchema("Boats", ["boatId", "destination"]))
    replica = reader.acquire()
    assert "Boats" in replica
    query = ConjunctiveQuery((Atom("Boats", [Variable("b"), "a"]),))
    assert replica.first_solution(query) is None


def test_replicas_are_per_shard_and_stable():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    r0, r1 = backend.reader(0), backend.reader(1)
    assert r0.acquire() is not r1.acquire()
    assert r0.acquire() is backend.reader(0).acquire()  # stable per shard
    assert len(backend.replica_stats()) == 2


def test_insert_many_bumps_the_write_token_once():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    before = backend.write_token
    db.insert_many("Flights", [(2, "b"), (3, "c")])
    assert backend.write_token == before + 1
    db.insert_many("Flights", [(2, "b")])  # all duplicates: no change
    assert backend.write_token == before + 1


# ---------------------------------------------------------------------------
# Listener lifecycle: closed/collected backends stop costing the database
# ---------------------------------------------------------------------------
def test_backend_close_detaches_the_write_listener():
    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    backend.close()
    backend.close()  # idempotent
    db.insert("Flights", (2, "b"))
    assert backend.write_token == 0  # no longer notified


def test_collected_backend_self_prunes_its_listener_stub():
    import gc

    db = _flights_db([(1, "a")])
    backend = ReplicatedBackend(db)
    backend.reader(0).acquire()
    assert len(db._write_listeners) == 1
    del backend
    gc.collect()
    db.insert("Flights", (2, "b"))  # dead stub removes itself
    assert db._write_listeners == []


def test_service_closes_the_backend_it_created_but_not_a_provided_one():
    from repro.core import ShardedCoordinationService

    db = _flights_db([(1, "a")])
    service = ShardedCoordinationService(db, shards=2, backend="replicated")
    owned = service.backend
    service.close()
    db.insert("Flights", (2, "b"))
    assert owned.write_token == 0  # detached by service.close()

    provided = ReplicatedBackend(db)
    service = ShardedCoordinationService(db, shards=2, backend=provided)
    service.close()
    db.insert("Flights", (3, "c"))
    assert provided.write_token == 1  # still attached: caller owns it
    provided.close()


# ---------------------------------------------------------------------------
# resolve_backend
# ---------------------------------------------------------------------------
def test_resolve_backend_names_and_instances():
    db = _flights_db([(1, "a")])
    assert isinstance(resolve_backend("shared", db), SharedBackend)
    assert isinstance(resolve_backend("replicated", db), ReplicatedBackend)
    prebuilt = ReplicatedBackend(db)
    assert resolve_backend(prebuilt, db) is prebuilt
    with pytest.raises(PreconditionError):
        resolve_backend("mystery", db)
    with pytest.raises(PreconditionError):
        resolve_backend(prebuilt, _flights_db([(2, "b")]))
