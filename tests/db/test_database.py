"""Unit tests for the Database facade and builder."""

import pytest

from repro.db import ConjunctiveQuery, Database, DatabaseBuilder, Schema, unary_boolean_database
from repro.errors import MalformedQueryError, SchemaError, UnknownRelationError
from repro.logic import Atom, var


class TestDatabase:
    def test_create_relation_and_insert(self):
        db = Database()
        db.create_relation("T", ["a", "b"])
        assert db.insert("T", (1, 2))
        assert not db.insert("T", (1, 2))
        assert db.contains("T", (1, 2))

    def test_insert_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            Database().insert("nope", (1,))

    def test_schema_relations_preexist(self):
        schema = Schema().relation("T", ["a"])
        db = Database(schema)
        assert "T" in db
        assert db.rows("T") == []

    def test_validate_rejects_arity_mismatch(self):
        db = Database()
        db.create_relation("T", ["a", "b"])
        query = ConjunctiveQuery([Atom("T", [var("x")])])
        with pytest.raises(SchemaError):
            db.is_satisfiable(query)

    def test_validate_rejects_unknown_relation(self):
        db = Database()
        query = ConjunctiveQuery([Atom("T", [var("x")])])
        with pytest.raises(UnknownRelationError):
            db.is_satisfiable(query)

    def test_domain_and_sizes(self):
        db = (
            DatabaseBuilder()
            .table("A", ["x"])
            .rows("A", [(1,), (2,)])
            .table("B", ["y"])
            .rows("B", [("v",)])
            .build()
        )
        assert db.domain() == {1, 2, "v"}
        assert db.sizes() == {"A": 2, "B": 1}

    def test_reset_stats(self):
        db = unary_boolean_database()
        db.is_satisfiable(ConjunctiveQuery([Atom("D", [var("x")])]))
        assert db.stats.queries_issued == 1
        db.reset_stats()
        assert db.stats.queries_issued == 0

    def test_stats_snapshot_delta(self):
        db = unary_boolean_database()
        before = db.stats.snapshot()
        db.is_satisfiable(ConjunctiveQuery([Atom("D", [var("x")])]))
        delta = db.stats.delta(before)
        assert delta.queries_issued == 1


class TestBuilder:
    def test_builder_round_trip(self):
        db = (
            DatabaseBuilder()
            .table("F", ["id", "dest"], key="id")
            .rows("F", [(1, "Paris")])
            .row("F", 2, "Athens")
            .build()
        )
        assert db.sizes() == {"F": 2}
        assert db.schema.get("F").key == "flightId" or db.schema.get("F").key == "id"

    def test_unary_boolean_database(self):
        db = unary_boolean_database()
        assert sorted(db.rows("D")) == [(0,), (1,)]
        # Satisfiability of any query over it is trivial (Section 3).
        assert db.is_satisfiable(ConjunctiveQuery([Atom("D", [var("x")])]))
        assert db.is_satisfiable(ConjunctiveQuery([Atom("D", [1])]))
        assert not db.is_satisfiable(ConjunctiveQuery([Atom("D", [2])]))


class TestConjunctiveQueryType:
    def test_outputs_default_to_all_variables(self):
        query = ConjunctiveQuery(
            [Atom("F", [var("x"), var("y")]), Atom("H", [var("y"), var("z")])]
        )
        assert query.outputs == (var("x"), var("y"), var("z"))

    def test_explicit_outputs_validated(self):
        with pytest.raises(SchemaError):
            ConjunctiveQuery([Atom("F", [var("x")])], outputs=[var("q")])

    def test_trivial(self):
        assert ConjunctiveQuery([]).is_trivial
        assert not ConjunctiveQuery([Atom("F", [1])]).is_trivial

    def test_str(self):
        assert str(ConjunctiveQuery([])) == "⊤"
        assert "F" in str(ConjunctiveQuery([Atom("F", [1])]))
