"""Unit tests for the conjunctive-query evaluator."""

import pytest

from repro.db import ConjunctiveQuery, DatabaseBuilder
from repro.logic import Atom, var


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("F", ["id", "dest"], key="id")
        .rows("F", [(1, "Paris"), (2, "Paris"), (3, "Athens")])
        .table("H", ["id", "loc"], key="id")
        .rows("H", [(10, "Paris"), (11, "Athens")])
        .build()
    )


class TestBasicEvaluation:
    def test_single_atom_all_solutions(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        xs = {s[var("x")] for s in db.solutions(query)}
        assert xs == {1, 2}

    def test_first_solution(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), "Athens"])])
        assert db.first_solution(query) == {var("x"): 3}

    def test_unsatisfiable(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), "Rome"])])
        assert db.first_solution(query) is None
        assert not db.is_satisfiable(query)

    def test_empty_query_trivially_true(self, db):
        query = ConjunctiveQuery([])
        assert db.first_solution(query) == {}
        assert db.is_satisfiable(query)

    def test_fully_ground_atom(self, db):
        assert db.is_satisfiable(ConjunctiveQuery([Atom("F", [1, "Paris"])]))
        assert not db.is_satisfiable(ConjunctiveQuery([Atom("F", [1, "Athens"])]))


class TestJoins:
    def test_join_on_shared_variable(self, db):
        # Flight and hotel in the same city.
        query = ConjunctiveQuery(
            [Atom("F", [var("f"), var("city")]), Atom("H", [var("h"), var("city")])]
        )
        solutions = list(db.solutions(query))
        cities = {s[var("city")] for s in solutions}
        assert cities == {"Paris", "Athens"}
        assert len(solutions) == 3  # 2 Paris flights × 1 hotel + 1 Athens pair

    def test_join_unsatisfiable_when_no_common_value(self, db):
        db.insert("F", (4, "Madrid"))  # no Madrid hotel
        query = ConjunctiveQuery(
            [Atom("F", [var("f"), "Madrid"]), Atom("H", [var("h"), "Madrid"])]
        )
        assert not db.is_satisfiable(query)

    def test_repeated_variable_within_atom(self, db):
        db.create_relation("P", ["a", "b"])
        db.insert_many("P", [(1, 1), (1, 2)])
        query = ConjunctiveQuery([Atom("P", [var("x"), var("x")])])
        assert [s[var("x")] for s in db.solutions(query)] == [1]

    def test_cross_product_when_disconnected(self, db):
        query = ConjunctiveQuery(
            [Atom("F", [var("f"), "Athens"]), Atom("H", [var("h"), "Paris"])]
        )
        solutions = list(db.solutions(query))
        assert len(solutions) == 1
        assert solutions[0] == {var("f"): 3, var("h"): 10}

    def test_same_atom_twice(self, db):
        query = ConjunctiveQuery(
            [Atom("F", [var("x"), "Paris"]), Atom("F", [var("x"), "Paris"])]
        )
        assert {s[var("x")] for s in db.solutions(query)} == {1, 2}

    def test_chain_join(self, db):
        db.create_relation("Next", ["a", "b"])
        db.insert_many("Next", [(1, 2), (2, 3), (3, 4)])
        query = ConjunctiveQuery(
            [
                Atom("Next", [var("a"), var("b")]),
                Atom("Next", [var("b"), var("c")]),
                Atom("Next", [var("c"), var("d")]),
            ]
        )
        solution = db.first_solution(query)
        assert solution == {var("a"): 1, var("b"): 2, var("c"): 3, var("d"): 4}


class TestDeepQueries:
    def test_long_chain_does_not_recurse_out(self, db):
        """The evaluator must handle conjunctions far beyond the
        interpreter's recursion limit (combined queries grow with the
        coordinating set)."""
        db.create_relation("Next", ["a", "b"])
        db.insert_many("Next", [(i, i + 1) for i in range(1300)])
        atoms = [
            Atom("Next", [var(f"x{i}"), var(f"x{i+1}")]) for i in range(1200)
        ]
        solution = db.first_solution(ConjunctiveQuery(atoms))
        assert solution is not None
        assert solution[var("x0")] == 0
        assert solution[var("x1200")] == 1200

    def test_backtracking_across_deep_failure(self, db):
        # Only one branch of many reaches the end; the explicit-stack
        # search must backtrack through all of them.
        db.create_relation("Edge", ["a", "b"])
        rows = [(0, i) for i in range(1, 6)]  # fan out from 0
        rows += [(5, 100)]  # only node 5 continues
        db.insert_many("Edge", rows)
        query = ConjunctiveQuery(
            [
                Atom("Edge", [0, var("m")]),
                Atom("Edge", [var("m"), var("end")]),
            ]
        )
        solution = db.first_solution(query)
        assert solution == {var("m"): 5, var("end"): 100}

    def test_initial_bindings_respected(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), var("d")])])
        solution = db.first_solution(query, initial={var("d"): "Athens"})
        assert solution is not None
        assert solution[var("x")] == 3

    def test_initial_bindings_can_make_unsatisfiable(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), var("d")])])
        assert db.first_solution(query, initial={var("d"): "Nowhere"}) is None

    def test_initial_bindings_pass_through_to_result(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), "Paris"])])
        extra = var("unrelated")
        solution = db.first_solution(query, initial={extra: 42})
        assert solution[extra] == 42


class TestCounters:
    def test_queries_issued_counted(self, db):
        db.reset_stats()
        db.is_satisfiable(ConjunctiveQuery([Atom("F", [var("x"), "Paris"])]))
        db.is_satisfiable(ConjunctiveQuery([Atom("F", [var("x"), "Rome"])]))
        assert db.stats.queries_issued == 2

    def test_count_solutions_with_limit(self, db):
        from repro.db import Evaluator  # noqa: F401  (public surface)

        query = ConjunctiveQuery([Atom("F", [var("x"), var("y")])])
        assert db._evaluator.count_solutions(query, limit=2) == 2

    def test_distinct_bindings(self, db):
        query = ConjunctiveQuery([Atom("F", [var("x"), var("dest")])])
        values = db.distinct_bindings(query, (var("dest"),))
        assert values == {("Paris",), ("Athens",)}
