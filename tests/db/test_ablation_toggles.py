"""Unit tests for the ablation toggles (plan cache, composite indexes).

The toggles exist so the ablation matrix can price each feature
(DESIGN.md §14); their contract is *result identity* — disabling a
feature changes counters and cost, never answers.
"""

import pytest

from repro.core import ServiceConfig, ShardedCoordinationService
from repro.db import Database
from repro.db.query import ConjunctiveQuery
from repro.errors import PreconditionError
from repro.logic import Atom, var


def _db() -> Database:
    db = Database()
    db.create_relation("F", ["id", "dest", "day"])
    db.insert_many(
        "F",
        [(i, "Paris" if i % 3 else "Athens", i % 5) for i in range(60)],
    )
    return db


def _two_column_query() -> ConjunctiveQuery:
    return ConjunctiveQuery([Atom("F", [var("x"), "Paris", 2])])


class TestPlanCacheToggle:
    def test_disabled_cache_never_hits(self):
        db = _db()
        db.configure(plan_cache=False)
        query = _two_column_query()
        before = db.stats.snapshot()
        list(db.solutions(query))
        list(db.solutions(query))
        delta = db.stats.delta(before)
        assert delta.plan_cache_hits == 0
        assert delta.plan_cache_misses == 2

    def test_results_identical_with_and_without_cache(self):
        cached, uncached = _db(), _db()
        uncached.configure(plan_cache=False)
        query = _two_column_query()
        assert list(cached.solutions(query)) == list(uncached.solutions(query))

    def test_disabling_drops_cached_plans(self):
        db = _db()
        list(db.solutions(_two_column_query()))
        assert db._evaluator.planner.cached_plans() == 1
        db.configure(plan_cache=False)
        assert db._evaluator.planner.cached_plans() == 0

    def test_reenabling_caches_again(self):
        db = _db()
        db.configure(plan_cache=False)
        list(db.solutions(_two_column_query()))
        db.configure(plan_cache=True)
        before = db.stats.snapshot()
        list(db.solutions(_two_column_query()))
        list(db.solutions(_two_column_query()))
        assert db.stats.delta(before).plan_cache_hits >= 1


class TestCompositeIndexToggle:
    def test_disabled_composites_build_nothing(self):
        db = _db()
        db.configure(composite_indexes=False)
        before = db.stats.snapshot()
        list(db.solutions(_two_column_query()))
        assert db.stats.delta(before).composite_indexes_built == 0

    def test_results_identical_with_and_without_composites(self):
        indexed, scanned = _db(), _db()
        scanned.configure(composite_indexes=False)
        query = _two_column_query()
        assert list(indexed.solutions(query)) == list(scanned.solutions(query))

    def test_toggle_applies_to_relations_created_later(self):
        db = _db()
        db.configure(composite_indexes=False)
        db.create_relation("G", ["a", "b"])
        db.insert_many("G", [(i, i % 4) for i in range(20)])
        before = db.stats.snapshot()
        list(db.solutions(ConjunctiveQuery([Atom("G", [3, var("b")])])))
        assert db.stats.delta(before).composite_indexes_built == 0

    def test_reenabling_rebuilds_on_demand(self):
        db = _db()
        db.configure(composite_indexes=False)
        list(db.solutions(_two_column_query()))
        db.configure(composite_indexes=True)
        before = db.stats.snapshot()
        list(db.solutions(_two_column_query()))
        assert db.stats.delta(before).composite_indexes_built == 1


class TestServiceConfigSurface:
    def test_placement_is_validated(self):
        with pytest.raises(PreconditionError):
            ServiceConfig(placement="round-robin")

    def test_none_inherits_database_settings(self):
        db = _db()
        db.configure(plan_cache=False)
        service = ShardedCoordinationService(db, ServiceConfig(shards=2))
        try:
            assert db.plan_cache_enabled is False
        finally:
            service.close()

    def test_config_overrides_database_settings(self):
        db = _db()
        service = ShardedCoordinationService(
            db,
            ServiceConfig(shards=2, plan_cache=False, composite_indexes=False),
        )
        try:
            assert db.plan_cache_enabled is False
            assert db.composite_indexes_enabled is False
        finally:
            service.close()

    def test_pending_placement_accepted(self):
        db = _db()
        service = ShardedCoordinationService(
            db, ServiceConfig(shards=2, placement="pending")
        )
        service.close()
