"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.db import DatabaseBuilder, save_database


@pytest.fixture
def db_file(tmp_path):
    db = (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich"), (102, "Paris")])
        .build()
    )
    path = tmp_path / "db.json"
    save_database(db, path)
    return str(path)


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "queries.eq"
    path.write_text(
        """
        gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
        chris:   {} R(Chris, y) :- Flights(y, 'Zurich');
        """
    )
    return str(path)


class TestCheck:
    def test_reports_properties(self, db_file, queries_file, capsys):
        assert main(["check", db_file, queries_file]) == 0
        out = capsys.readouterr().out
        assert "safe: True" in out
        assert "unique: False" in out
        assert "SCC Coordination Algorithm" in out

    def test_unsafe_program_diagnosed(self, db_file, tmp_path, capsys):
        path = tmp_path / "unsafe.eq"
        path.write_text(
            """
            a: {R(y, f)} R(x, A) :- Flights(x, f), Flights(y, f);
            b: {} R(u, B) :- Flights(u, 'Zurich');
            c: {} R(v, C) :- Flights(v, 'Paris');
            """
        )
        assert main(["check", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "safe: False" in out
        assert "Consistent Coordination Algorithm" in out


class TestCoordinate:
    def test_scc_success(self, db_file, queries_file, capsys):
        assert main(["coordinate", db_file, queries_file]) == 0
        out = capsys.readouterr().out
        assert "coordinating set (2 queries)" in out
        assert "Definition 1 check: OK" in out

    def test_exact_algorithm(self, db_file, queries_file, capsys):
        assert main(
            ["coordinate", db_file, queries_file, "--algorithm", "exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "coordinating set" in out

    def test_gupta_rejects_non_unique(self, db_file, queries_file, capsys):
        code = main(
            ["coordinate", db_file, queries_file, "--algorithm", "gupta"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unique" in err

    def test_failure_exit_code(self, db_file, tmp_path, capsys):
        path = tmp_path / "impossible.eq"
        path.write_text("a: {} R(x) :- Flights(x, 'Atlantis')")
        assert main(["coordinate", db_file, str(path)]) == 1
        assert "no coordinating set" in capsys.readouterr().out

    def test_trace_flag(self, db_file, queries_file, capsys):
        assert main(["coordinate", db_file, queries_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "selection:" in out

    def test_dot_output(self, db_file, queries_file, tmp_path, capsys):
        dot_path = tmp_path / "graph.dot"
        assert (
            main(
                ["coordinate", db_file, queries_file, "--dot", str(dot_path)]
            )
            == 0
        )
        content = dot_path.read_text()
        assert content.startswith("digraph")
        assert '"gwyneth" -> "chris";' in content

    def test_missing_file_is_clean_error(self, db_file, capsys):
        assert main(["coordinate", db_file, "/nonexistent.eq"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_schema_violation_is_clean_error(self, db_file, tmp_path, capsys):
        path = tmp_path / "bad.eq"
        path.write_text("a: {} R(x) :- NoSuchTable(x)")
        assert main(["coordinate", db_file, str(path)]) == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "shared flight: 101" in out


class TestOnline:
    @pytest.fixture
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.ops"
        path.write_text(
            """
            # Gwyneth waits for Chris, changes her mind, resubmits.
            submit gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            retract gwyneth
            submit gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            submit chris: {} R(Chris, y) :- Flights(y, 'Zurich');
            # A loner to Atlantis waits until the flight exists.
            submit solo: {} S(z) :- Flights(z, 'Atlantis')
            flush
            insert Flights 103 'Atlantis'
            flush
            """
        )
        return str(path)

    def test_replays_lifecycle_stream(self, db_file, stream_file, capsys):
        assert main(["online", db_file, stream_file, "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "gwyneth: pending" in out
        assert "gwyneth: retracted" in out
        assert "satisfied {chris, gwyneth}" in out
        assert "nothing coordinated" in out  # solo before the insert
        assert "satisfied {solo}" in out  # ... and after
        assert "done: 0 pending" in out

    def test_replays_stream_with_workers(self, db_file, stream_file, capsys):
        """The concurrent executor replays the same stream with the
        same deterministic output (each line settles before printing)."""
        assert main(["online", db_file, stream_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "gwyneth: pending" in out
        assert "satisfied {chris, gwyneth}" in out
        assert "satisfied {solo}" in out
        assert "done: 0 pending" in out
        assert "2 workers" in out

    def test_replays_stream_with_process_executor(self, db_file, stream_file, capsys):
        """Process-hosted shards replay the same stream with the same
        deterministic output (replicas sync the mid-stream insert)."""
        assert (
            main(
                ["online", db_file, stream_file,
                 "--workers", "2", "--executor", "process"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "gwyneth: pending" in out
        assert "satisfied {chris, gwyneth}" in out
        assert "satisfied {solo}" in out
        assert "done: 0 pending" in out

    @pytest.mark.parametrize("snapshot_store", ["file", "sqlite"])
    def test_durable_dir_persists_and_recovers(
        self, db_file, tmp_path, capsys, snapshot_store
    ):
        """A replay with --durable-dir leaves a directory a second run
        recovers from: the pending query survives the restart and is
        retired by the second stream's insert."""
        durable = str(tmp_path / "durable")
        first = tmp_path / "first.ops"
        first.write_text(
            "submit solo: {} S(z) :- Flights(z, 'Atlantis')\n"
        )
        args = ["--durable-dir", durable, "--fsync", "never",
                "--snapshot-store", snapshot_store]
        assert main(["online", db_file, str(first)] + args) == 0
        out = capsys.readouterr().out
        assert "solo: pending" in out
        assert "done: 1 pending" in out

        second = tmp_path / "second.ops"
        second.write_text("insert Flights 103 'Atlantis'\nflush\n")
        assert main(["online", db_file, str(second)] + args) == 0
        out = capsys.readouterr().out
        assert f"recovered from {durable}" in out
        assert "WAL records replayed" in out
        assert "satisfied {solo}" in out
        assert "done: 0 pending" in out

    def test_unsafe_submit_is_rejected_not_fatal(self, db_file, tmp_path, capsys):
        path = tmp_path / "unsafe.ops"
        path.write_text(
            """
            submit a: {P(m)} R(x, A) :- Flights(x, 'Zurich');
            submit b: {Q(n)} R(y, B) :- Flights(y, 'Paris');
            submit w: {R(u, v)} W(u) :- Flights(u, 'Zurich')
            submit c: {} S(z) :- Flights(z, 'Paris');
            """
        )
        assert main(["online", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out
        assert "satisfied {c}" in out  # the stream keeps going

    def test_unknown_operation_is_fatal(self, db_file, tmp_path, capsys):
        path = tmp_path / "bad.ops"
        path.write_text("frobnicate everything\n")
        assert main(["online", db_file, str(path)]) == 2
        assert "unknown operation" in capsys.readouterr().err

    def test_arrival_retiring_other_queries_is_reported(self, db_file, tmp_path, capsys):
        """An arrival can retire a set it does not belong to (a stalled
        component whose rows appeared); the replay must report it."""
        path = tmp_path / "bystander.ops"
        path.write_text(
            """
            submit a: {} A(x) :- Flights(x, 'Atlantis')
            insert Flights 103 'Atlantis'
            submit b: {A(u)} B(v) :- Flights(v, 'Nowhere')
            """
        )
        assert main(["online", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "submit b: pending" in out       # b itself still waits
        assert "submit b: satisfied {a}" in out  # ... but retired a


class TestStatsFlag:
    def test_coordinate_stats_prints_engine_counters(
        self, db_file, queries_file, capsys
    ):
        assert main(["coordinate", db_file, queries_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "queries issued:" in out
        assert "index probes:" in out
        assert "plan cache:" in out
        assert "composite indexes built:" in out

    def test_coordinate_without_stats_is_silent(
        self, db_file, queries_file, capsys
    ):
        assert main(["coordinate", db_file, queries_file]) == 0
        assert "engine stats:" not in capsys.readouterr().out

    def test_online_stats_prints_engine_counters(self, db_file, tmp_path, capsys):
        path = tmp_path / "stats.ops"
        path.write_text(
            """
            submit a: {} A(x) :- Flights(x, 'Zurich')
            insert Flights 103 'Atlantis'
            """
        )
        assert main(["online", db_file, str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "inserts:" in out


class TestOnlineBatchAndDrainOps:
    def test_batch_line_admits_together(self, db_file, tmp_path, capsys):
        # Two queries that only coordinate when admitted in one pass:
        # serial submits would retire the postcondition-free one alone.
        path = tmp_path / "batch.ops"
        path.write_text(
            "batch g: {R(Chris, x)} R(Gwyneth, x) :- "
            "Flights(x, 'Zurich'); c: {} R(Chris, y) :- "
            "Flights(y, 'Zurich')\n"
        )
        assert main(["online", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "satisfied {c, g}" in out

    def test_flush_drain_line(self, db_file, tmp_path, capsys):
        path = tmp_path / "drain.ops"
        path.write_text(
            """
            submit a: {R(y, 'b')} R(x, 'a') :- Flights(x, 'Zurich')
            flush_drain
            """
        )
        assert main(["online", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "flush_drain: nothing coordinated" in out


class TestScenario:
    def test_list_prints_catalog(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("partner", "keyword", "marketplace", "adversarial"):
            assert name in out

    def test_bare_scenario_lists_too(self, capsys):
        assert main(["scenario"]) == 0
        assert "marketplace" in capsys.readouterr().out

    def test_unknown_name_is_clean_error(self, capsys):
        assert main(["scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_runs_a_scenario_in_process(self, capsys):
        assert main(
            ["scenario", "marketplace", "--scale", "40", "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "marketplace (scale 40, seed 2012):" in out
        assert "0 pending" in out

    def test_ablation_toggles_accepted(self, capsys):
        assert main(
            [
                "scenario", "keyword", "--scale", "16",
                "--no-plan-cache", "--no-composite-indexes", "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "composite indexes built: 0" in out

    def test_out_writes_replayable_files(self, tmp_path, capsys):
        prefix = str(tmp_path / "adv")
        assert main(
            ["scenario", "adversarial", "--scale", "8", "--out", prefix]
        ) == 0
        out = capsys.readouterr().out
        assert f"{prefix}.db.json" in out
        assert main(
            ["online", f"{prefix}.db.json", f"{prefix}.ops"]
        ) == 0
        replay = capsys.readouterr().out
        assert "pending" in replay
