"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.db import DatabaseBuilder, save_database


@pytest.fixture
def db_file(tmp_path):
    db = (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich"), (102, "Paris")])
        .build()
    )
    path = tmp_path / "db.json"
    save_database(db, path)
    return str(path)


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "queries.eq"
    path.write_text(
        """
        gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
        chris:   {} R(Chris, y) :- Flights(y, 'Zurich');
        """
    )
    return str(path)


class TestCheck:
    def test_reports_properties(self, db_file, queries_file, capsys):
        assert main(["check", db_file, queries_file]) == 0
        out = capsys.readouterr().out
        assert "safe: True" in out
        assert "unique: False" in out
        assert "SCC Coordination Algorithm" in out

    def test_unsafe_program_diagnosed(self, db_file, tmp_path, capsys):
        path = tmp_path / "unsafe.eq"
        path.write_text(
            """
            a: {R(y, f)} R(x, A) :- Flights(x, f), Flights(y, f);
            b: {} R(u, B) :- Flights(u, 'Zurich');
            c: {} R(v, C) :- Flights(v, 'Paris');
            """
        )
        assert main(["check", db_file, str(path)]) == 0
        out = capsys.readouterr().out
        assert "safe: False" in out
        assert "Consistent Coordination Algorithm" in out


class TestCoordinate:
    def test_scc_success(self, db_file, queries_file, capsys):
        assert main(["coordinate", db_file, queries_file]) == 0
        out = capsys.readouterr().out
        assert "coordinating set (2 queries)" in out
        assert "Definition 1 check: OK" in out

    def test_exact_algorithm(self, db_file, queries_file, capsys):
        assert main(
            ["coordinate", db_file, queries_file, "--algorithm", "exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "coordinating set" in out

    def test_gupta_rejects_non_unique(self, db_file, queries_file, capsys):
        code = main(
            ["coordinate", db_file, queries_file, "--algorithm", "gupta"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unique" in err

    def test_failure_exit_code(self, db_file, tmp_path, capsys):
        path = tmp_path / "impossible.eq"
        path.write_text("a: {} R(x) :- Flights(x, 'Atlantis')")
        assert main(["coordinate", db_file, str(path)]) == 1
        assert "no coordinating set" in capsys.readouterr().out

    def test_trace_flag(self, db_file, queries_file, capsys):
        assert main(["coordinate", db_file, queries_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "selection:" in out

    def test_dot_output(self, db_file, queries_file, tmp_path, capsys):
        dot_path = tmp_path / "graph.dot"
        assert (
            main(
                ["coordinate", db_file, queries_file, "--dot", str(dot_path)]
            )
            == 0
        )
        content = dot_path.read_text()
        assert content.startswith("digraph")
        assert '"gwyneth" -> "chris";' in content

    def test_missing_file_is_clean_error(self, db_file, capsys):
        assert main(["coordinate", db_file, "/nonexistent.eq"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_schema_violation_is_clean_error(self, db_file, tmp_path, capsys):
        path = tmp_path / "bad.eq"
        path.write_text("a: {} R(x) :- NoSuchTable(x)")
        assert main(["coordinate", db_file, str(path)]) == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "shared flight: 101" in out
