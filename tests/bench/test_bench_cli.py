"""Smoke test for the ``python -m repro.bench`` entry point."""

from repro.bench.__main__ import main


def test_fast_single_figure(capsys):
    assert main(["--fast", "ablation-db-queries"]) == 0
    out = capsys.readouterr().out
    assert "Ablation B" in out
    assert "linear fit" in out
    assert "paper claim" in out


def test_fast_hardness_ablation(capsys):
    assert main(["--fast", "ablation-hardness"]) == 0
    out = capsys.readouterr().out
    assert "ablation-bruteforce" in out
    assert "ablation-dpll" in out
