"""Scaled-down smoke runs of every experiment definition.

Full-size figure runs live under ``benchmarks/``; here each experiment
executes with tiny parameters so the definitions stay healthy, and the
machine-independent claims (database-query counts, candidate counts)
are asserted exactly.
"""

from repro.bench import (
    FIGURES,
    ablation_db_queries,
    ablation_hardness,
    ablation_preprocessing,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.workloads import members_database


class TestFigureRunners:
    def test_figure4_smoke(self, small_members_db):
        series = figure4(sizes=[5, 10], db=small_members_db, repeats=1)
        assert series.xs() == [5, 10]
        # db_queries equals the number of queries on the list structure.
        assert series.points[0].extra_map()["db_queries"] == 5
        assert series.points[1].extra_map()["db_queries"] == 10

    def test_figure5_smoke(self, small_members_db):
        series = figure5(sizes=[6, 12], db=small_members_db, graphs_per_size=2)
        assert series.xs() == [6, 12]
        assert all(p.seconds > 0 for p in series.points)

    def test_figure6_smoke(self):
        series = figure6(sizes=[20, 40], graphs_per_size=2)
        assert series.xs() == [20, 40]
        assert series.points[0].extra_map()["components"] == 20

    def test_figure7_smoke(self):
        series = figure7(flight_counts=[10, 20], num_users=5, repeats=1)
        assert [p.extra_map()["values"] for p in series.points] == [10, 20]

    def test_figure8_smoke(self):
        series = figure8(user_counts=[4, 8], num_flights=10, repeats=1)
        assert series.xs() == [4, 8]
        # O(n) database queries.
        for point in series.points:
            assert point.extra_map()["db_queries"] <= 3 * point.x


class TestAblations:
    def test_hardness_ablation_smoke(self):
        brute, oracle = ablation_hardness(variable_counts=(3, 4))
        assert len(brute.points) == 2
        assert len(oracle.points) == 2

    def test_db_queries_ablation(self):
        series = ablation_db_queries(sizes=[5, 10], member_count=200)
        assert [p.extra_map()["db_queries"] for p in series.points] == [5, 10]

    def test_preprocessing_ablation(self):
        on, off = ablation_preprocessing(sizes=(10,), member_count=200)
        removed = on.points[0].extra_map()["removed"]
        # The broken middle query and everything upstream of it.
        assert removed == 6
        # Failure propagation already avoids database work for doomed
        # components, so preprocessing never *adds* queries; its win is
        # the graph/unification work it skips.
        assert (
            on.points[0].extra_map()["db_queries"]
            <= off.points[0].extra_map()["db_queries"]
        )


class TestRegistry:
    def test_all_figures_registered(self):
        assert {"fig4", "fig5", "fig6", "fig7", "fig8"} <= set(FIGURES)

    def test_experiments_have_claims(self):
        for experiment in FIGURES.values():
            assert experiment.paper_claim
            assert experiment.caption
