"""Unit tests for series rendering."""

from repro.bench import Point, Series, format_seconds, render_figure, render_series, sparkline


def _series():
    s = Series("fig-test", "queries", "seconds")
    s.points = [
        Point(x=10, seconds=0.001, repeats=1, extra=(("db_queries", 10.0),)),
        Point(x=20, seconds=0.002, repeats=1, extra=(("db_queries", 20.0),)),
    ]
    return s


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([1, 1, 1]) == "▁▁▁"

    def test_increasing_ends_high(self):
        line = sparkline([0, 5, 10])
        assert line[0] == "▁" and line[-1] == "█"

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4


class TestFormatSeconds:
    def test_microseconds(self):
        assert "µs" in format_seconds(5e-6)

    def test_milliseconds(self):
        assert "ms" in format_seconds(0.005)

    def test_seconds(self):
        assert format_seconds(2.5).strip().endswith("s")


class TestMarkdown:
    def test_series_markdown_table(self):
        from repro.bench import render_series_markdown

        text = render_series_markdown(_series())
        assert text.startswith("| queries | mean time | db_queries |")
        assert "| 10 |" in text
        assert "Linear fit" in text and "R²" in text

    def test_figure_markdown_section(self):
        from repro.bench import render_figure_markdown

        text = render_figure_markdown(
            "Figure 4", "list structure", "grows linearly", [_series()]
        )
        assert text.startswith("## Figure 4 — list structure")
        assert "**Paper claim:** grows linearly" in text
        assert "| queries |" in text


class TestRender:
    def test_render_series_contains_data(self):
        text = render_series(_series())
        assert "fig-test" in text
        assert "queries" in text
        assert "db_queries" in text
        assert "linear fit" in text
        assert "R²" in text

    def test_render_figure_includes_caption(self):
        text = render_figure("Figure 9", "a caption", [_series()])
        assert text.startswith("Figure 9: a caption")
        assert "fig-test" in text

    def test_render_custom_title(self):
        text = render_series(_series(), title="Custom")
        assert text.splitlines()[0] == "Custom"
