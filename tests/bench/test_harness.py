"""Unit tests for the timing harness."""

from repro.bench import Point, Series, run_series, time_call


class TestTimeCall:
    def test_returns_result(self):
        seconds, result = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0


class TestSeries:
    def _series(self, ys):
        s = Series("test", "n", "seconds")
        s.points = [Point(x=i, seconds=y, repeats=1) for i, y in enumerate(ys)]
        return s

    def test_xs_ys(self):
        s = self._series([0.1, 0.2, 0.3])
        assert s.xs() == [0, 1, 2]
        assert s.ys() == [0.1, 0.2, 0.3]

    def test_monotone_check(self):
        assert self._series([1, 2, 3]).is_monotone_nondecreasing()
        assert not self._series([3, 1, 0.1]).is_monotone_nondecreasing()
        # Tolerates small jitter.
        assert self._series([1.0, 0.9, 2.0]).is_monotone_nondecreasing(
            tolerance=0.25
        )

    def test_linear_fit_exact(self):
        s = self._series([1.0, 3.0, 5.0])  # y = 2x + 1
        slope, intercept, r2 = s.linear_fit()
        assert abs(slope - 2.0) < 1e-9
        assert abs(intercept - 1.0) < 1e-9
        assert abs(r2 - 1.0) < 1e-9

    def test_linear_fit_single_point(self):
        s = self._series([5.0])
        slope, intercept, r2 = s.linear_fit()
        assert slope == 0.0 and intercept == 5.0


class TestRunSeries:
    def test_runs_each_point(self):
        calls = []

        def make_point(x, repeat):
            return lambda: calls.append((x, repeat)) or x * 10

        series = run_series("s", [1, 2], make_point, repeats=3)
        assert len(series.points) == 2
        assert len(calls) == 6
        assert series.points[0].repeats == 3

    def test_extra_from_result(self):
        series = run_series(
            "s",
            [4],
            lambda x, r: (lambda: {"value": x * 2}),
            extra_from_result=lambda result: {"doubled": result["value"]},
        )
        assert series.points[0].extra_map() == {"doubled": 8}

    def test_stdev_populated_with_repeats(self):
        series = run_series("s", [1], lambda x, r: (lambda: None), repeats=4)
        assert series.points[0].seconds_stdev >= 0.0
