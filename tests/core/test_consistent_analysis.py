"""Tests for analysing raw entangled queries into consistent form.

Key property: analysis is the inverse of lowering —
``analyze_consistent(to_entangled(q)) == q`` for every structured
query, and queries outside the canonical shape are rejected with a
reason.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
    analyze_consistent,
    analyze_program,
    consistent_coordinate,
    parse_query,
    to_entangled,
)
from repro.db import DatabaseBuilder
from repro.errors import MalformedQueryError
from repro.workloads import movies_database, movies_queries, movies_setup


def _db():
    return (
        DatabaseBuilder()
        .table(
            "Flights",
            ["flightId", "destination", "day", "airline"],
            key="flightId",
        )
        .rows(
            "Flights",
            [(1, "Paris", "mon", "AA"), (2, "Zurich", "tue", "BA")],
        )
        .table("Friends", ["user", "friend"])
        .rows("Friends", [("alice", "bob"), ("bob", "alice")])
        .build()
    )


def _setup():
    return ConsistentSetup("Flights", ("destination", "day"), ("Friends",))


class TestRoundTrip:
    CASES = [
        ConsistentQuery("alice", {}, [FriendSlot()]),
        ConsistentQuery("alice", {"destination": "Paris"}, [FriendSlot()]),
        ConsistentQuery("alice", {"airline": "AA"}, [NamedPartner("bob")]),
        ConsistentQuery(
            "alice",
            {"destination": "Paris", "airline": "AA"},
            [NamedPartner("bob", same_tuple=True)],
        ),
        ConsistentQuery("alice", {"day": "mon"}, []),
        ConsistentQuery(
            "alice", {}, [FriendSlot(), NamedPartner("bob")]
        ),
    ]

    @pytest.mark.parametrize("query", CASES, ids=lambda q: str(q)[:60])
    def test_analysis_inverts_lowering(self, query):
        db, setup = _db(), _setup()
        lowered = to_entangled(query, setup, db)
        recovered = analyze_consistent(lowered, setup, db)
        assert recovered.user == query.user
        assert recovered.constraint_map() == query.constraint_map()
        assert recovered.partners == query.partners

    def test_movies_program_round_trips(self):
        db = movies_database()
        setup = movies_setup()
        queries = movies_queries()
        lowered = [to_entangled(q, setup, db) for q in queries]
        recovered = analyze_program(lowered, setup, db)
        assert [r.user for r in recovered] == [q.user for q in queries]
        # Running the algorithm on the recovered queries reproduces the
        # paper's outcome.
        result = consistent_coordinate(db, setup, recovered)
        assert result.found


class TestTextualWorkflow:
    def test_parse_then_analyze_then_coordinate(self):
        db, setup = _db(), _setup()
        source_a = (
            "alice: {R(y0, f0)} R(x, 'alice') :- "
            "Flights(x, d, t, a0), Friends('alice', f0), Flights(y0, d, t, a1)"
        )
        source_b = (
            "bob: {R(y0, f0)} R(x, 'bob') :- "
            "Flights(x, d, t, b0), Friends('bob', f0), Flights(y0, d, t, b1)"
        )
        queries = [parse_query(source_a), parse_query(source_b)]
        requests = analyze_program(queries, setup, db)
        assert [r.user for r in requests] == ["alice", "bob"]
        result = consistent_coordinate(db, setup, requests)
        assert result.found
        assert set(result.chosen.selections) == {"alice", "bob"}


class TestRejections:
    def _analyze(self, text):
        db, setup = _db(), _setup()
        return analyze_consistent(parse_query(text), setup, db)

    def test_two_heads_rejected(self):
        with pytest.raises(MalformedQueryError, match="one head"):
            self._analyze(
                "{} R(x, 'a'), R(y, 'b') :- Flights(x, d, t, a), Flights(y, d, t, b)"
            )

    def test_constant_key_rejected(self):
        with pytest.raises(MalformedQueryError, match="variable"):
            self._analyze("{} R(1, 'a') :- Flights(1, d, t, a)")

    def test_foreign_relation_rejected(self):
        with pytest.raises(MalformedQueryError, match="neither"):
            self._analyze("{} R(x, 'a') :- Hotels(x)")

    def test_unbound_friend_variable_rejected(self):
        with pytest.raises(MalformedQueryError, match="friendship"):
            self._analyze(
                "{R(y, f)} R(x, 'alice') :- Flights(x, d, t, a), Flights(y, d, t, b)"
            )

    def test_mixed_coordination_rejected(self):
        # Partner shares destination but NOT day: not A-coordinating
        # for A = {destination, day} — the Appendix B trap.
        with pytest.raises(MalformedQueryError, match="coordination attribute"):
            self._analyze(
                "{R(y, 'bob')} R(x, 'alice') :- "
                "Flights(x, d, t, a), Flights(y, d, t2, b)"
            )

    def test_shared_private_attribute_rejected(self):
        # Partner reuses the user's airline variable: coordinating on a
        # non-coordination attribute.
        with pytest.raises(MalformedQueryError, match="non-coordination"):
            self._analyze(
                "{R(y, 'bob')} R(x, 'alice') :- "
                "Flights(x, d, t, a), Flights(y, d, t, a)"
            )

    def test_orphan_partner_atom_rejected(self):
        with pytest.raises(MalformedQueryError, match="not"):
            self._analyze(
                "{} R(x, 'alice') :- Flights(x, d, t, a), Flights(y, d, t, b)"
            )

    def test_foreign_postcondition_relation_rejected(self):
        with pytest.raises(MalformedQueryError, match="postcondition"):
            self._analyze(
                "{Q(y, 'bob')} R(x, 'alice') :- Flights(x, d, t, a)"
            )


@st.composite
def _structured_queries(draw):
    constraints = {}
    if draw(st.booleans()):
        constraints["destination"] = draw(st.sampled_from(["Paris", "Zurich"]))
    if draw(st.booleans()):
        constraints["day"] = draw(st.sampled_from(["mon", "tue"]))
    if draw(st.booleans()):
        constraints["airline"] = draw(st.sampled_from(["AA", "BA"]))
    partners = []
    if draw(st.booleans()):
        partners.append(FriendSlot())
    if draw(st.booleans()):
        partners.append(
            NamedPartner("bob", same_tuple=draw(st.booleans()))
        )
    return ConsistentQuery("alice", constraints, partners)


@given(_structured_queries())
@settings(max_examples=100, deadline=None)
def test_property_round_trip(query):
    db, setup = _db(), _setup()
    lowered = to_entangled(query, setup, db)
    recovered = analyze_consistent(lowered, setup, db)
    assert recovered == ConsistentQuery(
        query.user, query.constraint_map(), query.partners
    )
