"""Tests for the consistent→entangled lowering and Definitions 7–9."""

import pytest

from repro.core import (
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
    classify_attributes,
    consistent_coordinate,
    find_coordinating_set,
    is_a_consistent,
    lower_all,
    outcome_witness,
    safety_report,
    to_entangled,
    verify_coordinating_set,
)
from repro.core.coordination_graph import CoordinationGraph
from repro.db import DatabaseBuilder
from repro.errors import MalformedQueryError
from repro.workloads import movies_database, movies_queries, movies_setup


def _db():
    builder = DatabaseBuilder()
    builder.table("Flights", ["flightId", "destination", "day", "airline"], key="flightId")
    builder.rows(
        "Flights",
        [
            (1, "Paris", "mon", "AA"),
            (2, "Paris", "mon", "BA"),
            (3, "Zurich", "tue", "AA"),
        ],
    )
    builder.table("Friends", ["user", "friend"])
    builder.rows("Friends", [("alice", "bob"), ("bob", "alice")])
    return builder.build()


def _setup():
    return ConsistentSetup("Flights", ("destination", "day"), ("Friends",))


class TestLowering:
    def test_friend_slot_shape(self):
        db = _db()
        q = ConsistentQuery("alice", {"airline": "AA"}, [FriendSlot()])
        lowered = to_entangled(q, _setup(), db)
        # {R(y0, f0)} R(x, alice) :- Flights(x,...), Friends(alice, f0),
        #                            Flights(y0, ...)
        assert len(lowered.postconditions) == 1
        assert len(lowered.head) == 1
        assert len(lowered.body) == 3
        assert lowered.body[1].relation == "Friends"

    def test_named_partner_shape(self):
        db = _db()
        q = ConsistentQuery("alice", {}, [NamedPartner("bob")])
        lowered = to_entangled(q, _setup(), db)
        assert len(lowered.body) == 2  # own S-atom + partner S-atom
        # Postcondition carries the constant partner name.
        assert lowered.postconditions[0].terms[1].value == "bob"

    def test_same_tuple_partner_reuses_key_variable(self):
        db = _db()
        q = ConsistentQuery("alice", {}, [NamedPartner("bob", same_tuple=True)])
        lowered = to_entangled(q, _setup(), db)
        assert lowered.postconditions[0].terms[0] == lowered.head[0].terms[0]
        assert len(lowered.body) == 1  # no separate partner atom

    def test_k_friends_not_expressible(self):
        db = _db()
        q = ConsistentQuery("alice", {}, [FriendSlot(count=2)])
        with pytest.raises(MalformedQueryError):
            to_entangled(q, _setup(), db)

    def test_coordination_attributes_shared(self):
        db = _db()
        q = ConsistentQuery("alice", {}, [NamedPartner("bob")])
        lowered = to_entangled(q, _setup(), db)
        own, partner = lowered.body
        # destination and day positions share the same variable.
        assert own.terms[1] == partner.terms[1]
        assert own.terms[2] == partner.terms[2]
        # airline positions differ.
        assert own.terms[3] != partner.terms[3]

    def test_lowered_set_is_unsafe_with_friend_slots(self):
        # The hallmark of Section 5: friend postconditions R(y, f) unify
        # with every head, so the set is unsafe.
        db = _db()
        queries = [
            ConsistentQuery("alice", {}, [FriendSlot()]),
            ConsistentQuery("bob", {}, [FriendSlot()]),
        ]
        lowered = lower_all(queries, _setup(), db)
        graph = CoordinationGraph.build(lowered)
        assert not safety_report(graph).is_safe


class TestDefinitions789:
    def test_classification_of_canonical_query(self):
        db = _db()
        q = ConsistentQuery("alice", {"airline": "AA"}, [NamedPartner("bob")])
        lowered = to_entangled(q, _setup(), db)
        classes = classify_attributes(lowered, _setup(), db)
        assert classes["destination"] == "coordinating"
        assert classes["day"] == "coordinating"
        assert classes["airline"] == "non-coordinating"

    def test_is_a_consistent_for_lowered_queries(self):
        db = _db()
        for q in (
            ConsistentQuery("alice", {}, [FriendSlot()]),
            ConsistentQuery("alice", {"destination": "Paris"}, [NamedPartner("bob")]),
            ConsistentQuery("alice", {"airline": "AA"}, []),
        ):
            lowered = to_entangled(q, _setup(), db)
            assert is_a_consistent(lowered, _setup(), db), q

    def test_wrong_attribute_set_not_consistent(self):
        # Coordinating additionally on airline (Appendix B's relaxation)
        # must be rejected by the A = {destination, day} check.
        db = _db()
        q = ConsistentQuery("alice", {}, [NamedPartner("bob")])
        wrong_setup = ConsistentSetup("Flights", ("destination",), ("Friends",))
        lowered = to_entangled(q, _setup(), db)  # shares day too
        assert not is_a_consistent(lowered, wrong_setup, db)


class TestCrossValidation:
    """Consistent algorithm vs. Definition-1 semantics of lowered queries."""

    def test_movies_outcome_is_a_definition1_witness(self):
        db = movies_database()
        setup = movies_setup()
        queries = movies_queries()
        result = consistent_coordinate(db, setup, queries)
        assert result.found
        lowered = lower_all(queries, setup, db)
        witness = outcome_witness(result.chosen, queries, setup, db)
        assert witness is not None
        members = list(result.chosen.selections)
        report = verify_coordinating_set(db, lowered, members, witness)
        assert report.ok, report.reason

    def test_existence_agrees_with_bruteforce(self):
        db = _db()
        setup = _setup()
        cases = [
            [
                ConsistentQuery("alice", {}, [FriendSlot()]),
                ConsistentQuery("bob", {}, [FriendSlot()]),
            ],
            [
                ConsistentQuery("alice", {"destination": "Paris"}, [FriendSlot()]),
                ConsistentQuery("bob", {"destination": "Zurich"}, [FriendSlot()]),
            ],
            [
                ConsistentQuery("alice", {"destination": "Mars"}, []),
            ],
            [
                ConsistentQuery("alice", {}, [NamedPartner("bob")]),
                ConsistentQuery("bob", {"destination": "Zurich"}, []),
            ],
        ]
        for queries in cases:
            result = consistent_coordinate(db, setup, queries)
            lowered = lower_all(queries, setup, db)
            exact = find_coordinating_set(db, lowered)
            assert result.found == (exact is not None), [str(q) for q in queries]

    def test_outcome_witness_for_flight_case(self):
        db = _db()
        setup = _setup()
        queries = [
            ConsistentQuery("alice", {"airline": "AA"}, [FriendSlot()]),
            ConsistentQuery("bob", {"airline": "BA"}, [FriendSlot()]),
        ]
        result = consistent_coordinate(db, setup, queries)
        assert result.found
        witness = outcome_witness(result.chosen, queries, setup, db)
        assert witness is not None
        lowered = lower_all(queries, setup, db)
        report = verify_coordinating_set(
            db, lowered, list(result.chosen.selections), witness
        )
        assert report.ok, report.reason
