"""Unit tests for the Consistent Coordination Algorithm (Section 5)."""

import pytest

from repro.core import (
    ConsistentCoordinator,
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
    consistent_coordinate,
)
from repro.db import DatabaseBuilder
from repro.errors import MalformedQueryError, PreconditionError
from repro.workloads import (
    expected_option_lists,
    movies_database,
    movies_queries,
    movies_setup,
)


def _simple_db(rows=None):
    """Flights(flightId, destination, day) + Friends."""
    builder = DatabaseBuilder()
    builder.table("Flights", ["flightId", "destination", "day"], key="flightId")
    builder.rows(
        "Flights",
        rows
        or [
            (1, "Paris", "mon"),
            (2, "Paris", "tue"),
            (3, "Zurich", "mon"),
            (4, "Zurich", "tue"),
        ],
    )
    builder.table("Friends", ["user", "friend"])
    builder.rows(
        "Friends",
        [("alice", "bob"), ("bob", "alice"), ("carol", "alice"), ("alice", "carol")],
    )
    return builder.build()


def _setup():
    return ConsistentSetup("Flights", ("destination", "day"), ("Friends",))


class TestMoviesExample:
    """The Section 5 walkthrough must reproduce exactly."""

    def test_option_lists_match_paper_table(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        assert result.option_lists == expected_option_lists()

    def test_cinemark_cleans_to_empty(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        assert ("Cinemark",) not in {c.value for c in result.candidates}

    def test_regal_set_is_chris_jonny_will(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        regal = [c for c in result.candidates if c.value == ("Regal",)]
        assert len(regal) == 1
        assert set(regal[0].users) == {"Chris", "Jonny", "Will"}

    def test_chosen_outcome_grounds_to_movie_ids(self):
        db = movies_database()
        result = consistent_coordinate(db, movies_setup(), movies_queries())
        assert result.found
        for user, key in result.chosen.selections.items():
            row = next(db.relation("M").match({0: key}))
            assert row[1] == result.chosen.value[0]  # cinema agrees

    def test_friend_witnesses_are_friends(self):
        db = movies_database()
        result = consistent_coordinate(db, movies_setup(), movies_queries())
        for user, witnesses in result.chosen.friend_witnesses.items():
            for witness in witnesses:
                assert db.contains("C", (user, witness))


class TestOptionLists:
    def test_unconstrained_query_sees_all_values(self):
        db = _simple_db()
        coordinator = ConsistentCoordinator(db, _setup())
        q = ConsistentQuery("alice", {}, [FriendSlot()])
        assert len(coordinator.option_list(q)) == 4

    def test_coordination_constraint_restricts(self):
        db = _simple_db()
        coordinator = ConsistentCoordinator(db, _setup())
        q = ConsistentQuery("alice", {"destination": "Paris"}, [FriendSlot()])
        values = coordinator._constrained_option_list(q)
        assert values == {("Paris", "mon"), ("Paris", "tue")}

    def test_private_constraint_restricts_via_body(self):
        db = _simple_db(
            rows=[
                (1, "Paris", "mon"),
                (2, "Paris", "tue"),
            ]
        )
        db.insert("Flights", (3, "Paris", "wed"))
        coordinator = ConsistentCoordinator(db, _setup())
        q = ConsistentQuery("alice", {"day": "wed"}, [FriendSlot()])
        assert coordinator._constrained_option_list(q) == {("Paris", "wed")}

    def test_unsatisfiable_constraint_empty(self):
        db = _simple_db()
        coordinator = ConsistentCoordinator(db, _setup())
        q = ConsistentQuery("alice", {"destination": "Mars"}, [FriendSlot()])
        assert coordinator._constrained_option_list(q) == frozenset()


class TestCleaning:
    def test_friend_requirement_cascades(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {"destination": "Paris"}, [FriendSlot()]),
            ConsistentQuery("bob", {"destination": "Zurich"}, [FriendSlot()]),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        # alice and bob are mutual friends but can never agree on a
        # destination: all subgraphs clean to empty.
        assert not result.found

    def test_named_partner_must_be_present(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [NamedPartner("bob")]),
            ConsistentQuery("bob", {"destination": "Zurich"}, []),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        assert result.found
        # For Zurich values both survive; for Paris values bob is absent
        # so alice is cleaned away and bob alone has no requirement...
        zurich = [c for c in result.candidates if c.value[0] == "Zurich"]
        assert all(set(c.users) == {"alice", "bob"} for c in zurich)
        paris = [c for c in result.candidates if c.value[0] == "Paris"]
        assert all(set(c.users) == {"bob"} for c in paris) or not paris

    def test_named_partner_never_submitted(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {}, [NamedPartner("ghost")])]
        result = consistent_coordinate(db, _setup(), queries)
        assert not result.found

    def test_query_with_no_partners_is_self_sufficient(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {"destination": "Paris"}, [])]
        result = consistent_coordinate(db, _setup(), queries)
        assert result.found
        assert result.chosen.users == ("alice",)

    def test_k_friends_generalisation(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [FriendSlot(count=2)]),
            ConsistentQuery("bob", {}, [FriendSlot()]),
            ConsistentQuery("carol", {}, [FriendSlot()]),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        # alice needs two friends: bob and carol are both her friends.
        assert result.found
        assert set(result.chosen.users) == {"alice", "bob", "carol"}
        assert set(result.chosen.friend_witnesses["alice"]) == {"bob", "carol"}

    def test_k_friends_insufficient(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [FriendSlot(count=2)]),
            ConsistentQuery("bob", {}, [FriendSlot()]),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        # alice has only bob present; bob alone satisfies his slot via
        # alice... but alice is cleaned (needs 2 friends), then bob too.
        assert not result.found


class TestMultipleFriendshipRelations:
    """The paper's generalisation: several binary relations at once."""

    def _db(self):
        builder = DatabaseBuilder()
        builder.table("Flights", ["flightId", "destination", "day"], key="flightId")
        builder.rows("Flights", [(1, "Paris", "mon"), (2, "Zurich", "tue")])
        builder.table("Friends", ["user", "friend"])
        builder.rows("Friends", [("alice", "bob"), ("bob", "alice")])
        builder.table("Colleagues", ["user", "colleague"])
        builder.rows("Colleagues", [("alice", "carol"), ("bob", "carol")])
        return builder.build()

    def _setup(self):
        return ConsistentSetup(
            "Flights", ("destination", "day"), ("Friends", "Colleagues")
        )

    def test_slots_resolve_against_their_own_relation(self):
        db = self._db()
        queries = [
            # alice wants a friend AND a colleague on the trip.
            ConsistentQuery(
                "alice", {}, [FriendSlot("Friends"), FriendSlot("Colleagues")]
            ),
            ConsistentQuery("bob", {}, [FriendSlot("Friends")]),
            ConsistentQuery("carol", {}, []),
        ]
        result = consistent_coordinate(db, self._setup(), queries)
        assert result.found
        assert set(result.chosen.users) == {"alice", "bob", "carol"}
        # alice's witnesses: bob (friend) and carol (colleague).
        assert set(result.chosen.friend_witnesses["alice"]) == {"bob", "carol"}

    def test_wrong_relation_does_not_satisfy_slot(self):
        db = self._db()
        queries = [
            # bob has no Friends entry pointing at carol; a Friends slot
            # cannot be satisfied by the Colleagues relation.
            ConsistentQuery("bob", {}, [FriendSlot("Friends")]),
            ConsistentQuery("carol", {}, []),
        ]
        result = consistent_coordinate(db, self._setup(), queries)
        candidates = {tuple(c.users) for c in result.candidates}
        assert ("bob", "carol") not in candidates
        assert all("bob" not in c.users for c in result.candidates)


class TestSameTuple:
    def test_same_tuple_pair_gets_one_flight(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [NamedPartner("bob", same_tuple=True)]),
            ConsistentQuery("bob", {}, []),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        assert result.found
        assert result.chosen.selections["alice"] == result.chosen.selections["bob"]

    def test_same_tuple_conflicting_private_constraints(self):
        db = DatabaseBuilder()
        db.table("Flights", ["flightId", "destination", "day", "airline"], key="flightId")
        db.rows(
            "Flights",
            [(1, "Paris", "mon", "AA"), (2, "Paris", "mon", "BA")],
        )
        db.table("Friends", ["user", "friend"])
        db.rows("Friends", [("alice", "bob")])
        built = db.build()
        setup = ConsistentSetup("Flights", ("destination", "day"), ("Friends",))
        queries = [
            ConsistentQuery(
                "alice", {"airline": "AA"}, [NamedPartner("bob", same_tuple=True)]
            ),
            ConsistentQuery("bob", {"airline": "BA"}, []),
        ]
        result = consistent_coordinate(built, setup, queries)
        # One flight cannot have two airlines.
        assert not result.found or "alice" not in result.chosen.selections

    def test_same_tuple_chain_grounds_to_common_key(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [NamedPartner("bob", same_tuple=True)]),
            ConsistentQuery("bob", {}, [NamedPartner("carol", same_tuple=True)]),
            ConsistentQuery("carol", {}, []),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        assert result.found
        keys = set(result.chosen.selections.values())
        assert len(keys) == 1


class TestValidation:
    def test_duplicate_user_rejected(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, []),
            ConsistentQuery("alice", {}, []),
        ]
        with pytest.raises(PreconditionError):
            consistent_coordinate(db, _setup(), queries)

    def test_key_constraint_rejected(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {"flightId": 1}, [])]
        with pytest.raises(PreconditionError):
            consistent_coordinate(db, _setup(), queries)

    def test_unknown_attribute_rejected(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {"zzz": 1}, [])]
        with pytest.raises(Exception):
            consistent_coordinate(db, _setup(), queries)

    def test_unknown_friend_relation_rejected(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {}, [FriendSlot("Enemies")])]
        with pytest.raises(PreconditionError):
            consistent_coordinate(db, _setup(), queries)

    def test_setup_requires_coordination_attributes(self):
        with pytest.raises(PreconditionError):
            ConsistentSetup("Flights", ())

    def test_friend_slot_count_positive(self):
        with pytest.raises(MalformedQueryError):
            FriendSlot(count=0)

    def test_duplicate_constraint_rejected(self):
        with pytest.raises(MalformedQueryError):
            ConsistentQuery("a", [("day", "mon"), ("day", "tue")])


class TestCostModel:
    def test_linear_db_queries(self):
        db = _simple_db()
        queries = [
            ConsistentQuery("alice", {}, [FriendSlot()]),
            ConsistentQuery("bob", {}, [FriendSlot()]),
        ]
        result = consistent_coordinate(db, _setup(), queries)
        # Paper: O(n) database queries — option list + friends per
        # query, plus one grounding query per member of the chosen set.
        n = len(queries)
        assert result.stats.db_queries <= 3 * n

    def test_stop_at_first(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {}, [])]
        coordinator = ConsistentCoordinator(db, _setup())
        result = coordinator.coordinate(queries, stop_at_first=True)
        assert result.found
        assert len(result.candidates) == 1

    def test_candidate_values_counted(self):
        db = _simple_db()
        queries = [ConsistentQuery("alice", {}, [])]
        result = consistent_coordinate(db, _setup(), queries)
        assert result.stats.candidate_values == 4
