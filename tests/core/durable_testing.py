"""Shared helpers for the durable-service crash/recovery suites.

Used by both the in-process recovery tests
(``test_durable_service.py``) and the ``kill -9`` subprocess harness
(``durable_crash_child.py``): a deterministic, placement-independent
operation stream, the one interpreter that applies it to a service, and
a JSON-comparable rendering of every durable observable (relations,
pending pool, per-query lifecycle states).

The crash-point contract the harness relies on: **every stream
operation produces exactly one service journal entry**, so the durable
journal length ``D`` after recovery is precisely the index of the next
stream operation to run — the oracle for a crash at any point is a
never-crashed service fed ``stream[:D]``.
"""

import random
from typing import List, Tuple

from repro.core.service import ServiceConfig, ShardedCoordinationService
from repro.db import Database, RelationSchema
from repro.errors import PreconditionError
from repro.networks import member_name
from repro.workloads import partner_query

USER_SPAN = 40
BASE_ROWS = 30

#: One stream operation (all placement-independent — plain ``flush`` is
#: per-shard-relative, so the durable streams use ``flush_drain`` like
#: every other oracle-replayable fuzz in the suite).
StreamOp = Tuple


def fresh_db() -> Database:
    """An empty database with the Members schema the stream inserts into."""
    db = Database()
    db.attach_relation(
        RelationSchema("Members", ("member", "region", "interest", "karma"))
    )
    return db


def seed_rows(size: int = BASE_ROWS) -> List[Tuple]:
    """The base member rows; part of the stream so they are journaled."""
    return [
        (member_name(i), f"region{i % 4}", f"interest{i % 6}", i)
        for i in range(size)
    ]


def build_stream(seed: int, length: int = 220) -> List[StreamOp]:
    """A deterministic op stream: seeding inserts, then fuzzed traffic.

    Derived purely from ``seed`` — never from runtime service state —
    so a recovered service resuming at any index replays exactly what
    the crashed run would have executed (retracts may target a name
    that is not pending; that raises, is journaled as raised, and
    replays identically).
    """
    rng = random.Random(seed)
    ops: List[StreamOp] = [("insert", row) for row in seed_rows()]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.15:
            ops.append(("retract", member_name(rng.randrange(USER_SPAN))))
        elif roll < 0.25:
            extra = BASE_ROWS + rng.randrange(20)
            ops.append(
                (
                    "insert",
                    (
                        member_name(extra),
                        f"region{rng.randrange(4)}",
                        f"interest{rng.randrange(6)}",
                        100 + extra,
                    ),
                )
            )
        elif roll < 0.30:
            # Deletions exercise the tombstone sync/WAL path; the row
            # is reconstructed from the seed so absent-row deletes
            # (already removed earlier in the stream) replay as the
            # same journaled no-op.
            ops.append(("delete", seed_rows()[rng.randrange(BASE_ROWS)]))
        elif roll < 0.36:
            ops.append(("flush_drain",))
        else:
            index = rng.randrange(USER_SPAN)
            partners = rng.sample(
                [j for j in range(USER_SPAN) if j != index],
                k=rng.choice((0, 1, 1, 2, 3)),
            )
            ops.append(("submit", index, tuple(partners)))
    return ops


def apply_op(service: ShardedCoordinationService, op: StreamOp) -> None:
    """Apply one stream op; exactly one journal entry either way."""
    kind = op[0]
    if kind == "submit":
        _, index, partners = op
        query = partner_query(
            member_name(index), [member_name(p) for p in partners]
        )
        try:
            service.submit(query)
        except PreconditionError:
            pass  # duplicate pending name — journaled as raised
    elif kind == "retract":
        try:
            service.retract(op[1])
        except PreconditionError:
            pass  # not pending — journaled as raised
    elif kind == "insert":
        service.insert("Members", op[1])
    elif kind == "delete":
        service.delete("Members", op[1])
    elif kind == "flush_drain":
        service.flush_drain()
    else:  # pragma: no cover - streams come from build_stream
        raise AssertionError(f"unknown stream op {op!r}")


def observables(service: ShardedCoordinationService) -> dict:
    """Every durable observable, rendered JSON-comparable.

    Relations are dumped in row order (byte-identity, not just set
    equality), the pending pool comes from the routing table, and the
    lifecycle state of every name the stream can mention captures the
    handle outcomes that survive a restart.
    """
    db = service.db
    relations = {
        name: [list(row) for row in db.relation(name).scan()]
        for name in sorted(db._relations)
    }
    states = {}
    for index in range(USER_SPAN):
        name = member_name(index)
        state = service.status(name)
        states[name] = None if state is None else state.value
    return {
        "relations": relations,
        "pending": list(service.pending()),
        "states": states,
    }


def oracle_observables(stream: List[StreamOp]) -> dict:
    """What a never-crashed serial in-memory service observes."""
    service = ShardedCoordinationService(fresh_db(), ServiceConfig(shards=2))
    try:
        for op in stream:
            apply_op(service, op)
        return observables(service)
    finally:
        service.close()
