"""Unit tests for the online CoordinationEngine (Youtopia-style loop)."""

import pytest

from repro.core import CoordinationEngine, parse_query
from repro.db import DatabaseBuilder
from repro.errors import PreconditionError


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("Fl", ["flightId", "destination"], key="flightId")
        .rows("Fl", [(1, "Zurich"), (2, "Paris")])
        .build()
    )


class TestArrivals:
    def test_first_arrival_waits(self, db):
        engine = CoordinationEngine(db)
        outcome = engine.submit(
            parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')")
        )
        assert not outcome.coordinated
        assert engine.pending() == ("a",)

    def test_second_arrival_completes_pair(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        outcome = engine.submit(
            parse_query("b: {Q(y)} P(y) :- Fl(y, 'Zurich')")
        )
        assert outcome.coordinated
        assert set(outcome.satisfied) == {"a", "b"}
        assert engine.pending() == ()

    def test_self_sufficient_arrival_coordinates_alone(self, db):
        engine = CoordinationEngine(db)
        outcome = engine.submit(parse_query("a: {} Q(x) :- Fl(x, 'Zurich')"))
        assert outcome.coordinated
        assert outcome.satisfied == ("a",)

    def test_unrelated_queries_evaluated_separately(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        outcome = engine.submit(parse_query("b: {} S(y) :- Fl(y, 'Paris')"))
        # b's component is just b; it coordinates without touching a.
        assert outcome.component == ("b",)
        assert outcome.coordinated
        assert engine.pending() == ("a",)

    def test_duplicate_name_rejected(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        with pytest.raises(PreconditionError):
            engine.submit(parse_query("a: {} S(y) :- Fl(y, 'Paris')"))

    def test_unsafe_arrival_rejected_and_rolled_back(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {} R(x, A) :- Fl(x, 'Zurich')"))
        engine.submit(parse_query("b: {R(y, f)} R(y2, B) :- Fl(y, f), Fl(y2, f)"))
        # b's postcondition matches both a's and c's heads once c joins.
        with pytest.raises(PreconditionError):
            engine.submit(parse_query("c: {} R(z, C) :- Fl(z, 'Paris')"))
        assert "c" not in engine.pending()

    def test_flush_evaluates_remaining(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        result = engine.flush()
        # a's postcondition P has no provider: no coordinating set.
        assert not result.found
        assert engine.pending() == ("a",)

    def test_satisfied_queries_are_deleted(self, db):
        # Youtopia semantics (Section 6.1): once a coordinating set is
        # found, its queries are deleted.  A self-sufficient query is
        # answered immediately, so a *later* arrival that needed it is
        # out of luck — order matters in the online setting.
        engine = CoordinationEngine(db)
        first = engine.submit(parse_query("tail: {} P(y) :- Fl(y, 'Zurich')"))
        assert first.coordinated
        late = engine.submit(parse_query("head: {P(x)} S(x) :- Fl(x, 'Zurich')"))
        assert not late.coordinated
        assert engine.pending() == ("head",)

    def test_waiting_query_caught_by_later_provider(self, db):
        # The reverse order works: head waits, tail completes the pair.
        engine = CoordinationEngine(db)
        engine.submit(parse_query("head: {P(x)} S(x) :- Fl(x, 'Zurich')"))
        outcome = engine.submit(parse_query("tail: {} P(y) :- Fl(y, 'Zurich')"))
        assert outcome.coordinated
        assert set(outcome.satisfied) == {"head", "tail"}
