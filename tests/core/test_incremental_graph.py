"""Property tests: incremental graph maintenance equals batch building.

``CoordinationGraph.with_query`` must produce, arrival by arrival,
exactly the graph that ``CoordinationGraph.build`` produces on the
whole set — same collapsed edges, same extended edge multiset, same
safety verdicts.  Exercised with the deterministic paper workloads and
with hypothesis-generated random partner structures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoordinationGraph, safety_report
from repro.errors import MalformedQueryError
from repro.networks import member_name
from repro.workloads import partner_query, vacation_queries


def _edge_multiset(graph: CoordinationGraph):
    return sorted(
        (e.source, e.post_index, e.target, e.head_index)
        for e in graph.extended_edges
    )


def _collapsed(graph: CoordinationGraph):
    return {
        name: frozenset(graph.graph.successors(name)) for name in graph.names()
    }


class TestDeterministicWorkloads:
    def test_vacation_queries_incremental(self):
        queries = vacation_queries()
        batch = CoordinationGraph.build(queries)
        incremental = CoordinationGraph.build([])
        for query in queries:
            incremental = incremental.with_query(query)
        assert _edge_multiset(incremental) == _edge_multiset(batch)
        assert _collapsed(incremental) == _collapsed(batch)

    def test_order_does_not_matter(self):
        queries = vacation_queries()
        forward = CoordinationGraph.build([])
        for query in queries:
            forward = forward.with_query(query)
        backward = CoordinationGraph.build([])
        for query in reversed(queries):
            backward = backward.with_query(query)
        assert _edge_multiset(forward) == _edge_multiset(backward)

    def test_duplicate_rejected(self):
        queries = vacation_queries()
        graph = CoordinationGraph.build(queries)
        with pytest.raises(MalformedQueryError):
            graph.with_query(queries[0])

    def test_receiver_not_mutated(self):
        queries = vacation_queries()
        base = CoordinationGraph.build(queries[:2])
        before_edges = _edge_multiset(base)
        base.with_query(queries[2])
        assert _edge_multiset(base) == before_edges
        assert set(base.names()) == {"qC", "qG"}

    def test_branching_from_same_base(self):
        # Two different extensions of one base must not interfere
        # (the head index is copied, not shared).
        queries = vacation_queries()
        base = CoordinationGraph.build(queries[:2])
        left = base.with_query(queries[2])   # + qJ
        right = base.with_query(queries[3])  # + qW
        assert "qW" not in left.names()
        assert "qJ" not in right.names()
        # left must have no edges touching qW and vice versa.
        assert all(
            e.source != "qW" and e.target != "qW" for e in left.extended_edges
        )
        assert all(
            e.source != "qJ" and e.target != "qJ" for e in right.extended_edges
        )

    def test_safety_agrees(self):
        queries = vacation_queries()
        batch = CoordinationGraph.build(queries)
        incremental = CoordinationGraph.build([])
        for query in queries:
            incremental = incremental.with_query(query)
        assert (
            safety_report(incremental).is_safe == safety_report(batch).is_safe
        )


@st.composite
def _partner_structures(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    partner_lists = []
    for i in range(n):
        others = [j for j in range(n) if j != i]
        partners = draw(
            st.lists(st.sampled_from(others), unique=True, max_size=3)
            if others
            else st.just([])
        )
        partner_lists.append(partners)
    return partner_lists


class TestRandomStructures:
    @given(_partner_structures())
    @settings(max_examples=80, deadline=None)
    def test_incremental_equals_batch(self, partner_lists):
        queries = [
            partner_query(member_name(i), [member_name(p) for p in partners])
            for i, partners in enumerate(partner_lists)
        ]
        batch = CoordinationGraph.build(queries)
        incremental = CoordinationGraph.build([])
        for query in queries:
            incremental = incremental.with_query(query)
        assert _edge_multiset(incremental) == _edge_multiset(batch)
        assert _collapsed(incremental) == _collapsed(batch)
