"""Unit tests for extended/collapsed coordination graphs (Section 2.3)."""

import pytest

from repro.core import CoordinationGraph, parse_queries
from repro.errors import MalformedQueryError
from repro.workloads import expected_coordination_edges, vacation_queries


class TestVacationExample:
    """The graph must equal Figure 2 of the paper."""

    def test_collapsed_edges_match_figure_2(self):
        graph = CoordinationGraph.build(vacation_queries())
        expected = expected_coordination_edges()
        for name, successors in expected.items():
            assert graph.graph.successors(name) == successors

    def test_extended_edge_count(self):
        graph = CoordinationGraph.build(vacation_queries())
        # Figure 2: qC->qG (1 via R), qG->qC (2: R and Q), qJ->qC (1),
        # qJ->qG (1), qW->qC (1), qW->qJ (1) = 7 labelled edges.
        assert len(graph.extended_edges) == 7

    def test_edges_from_postcondition(self):
        graph = CoordinationGraph.build(vacation_queries())
        # qC's only postcondition R(G, x1) points at qG's head R(G, y1).
        edges = graph.edges_from_postcondition("qC", 0)
        assert len(edges) == 1
        assert edges[0].target == "qG"

    def test_post_and_head_atoms_are_standardized(self):
        graph = CoordinationGraph.build(vacation_queries())
        edge = graph.edges_from_postcondition("qC", 0)[0]
        post = graph.post_atom(edge)
        head = graph.head_atom(edge)
        assert all(v.namespace == "qC" for v in post.variables())
        assert all(v.namespace == "qG" for v in head.variables())


class TestConstruction:
    def test_shared_variable_names_do_not_create_edges(self):
        # Both queries use variable x; without standardising apart the
        # heads would spuriously relate.
        queries = parse_queries(
            "a: {P(x, 1)} P(x, 2) :- T(x); b: {} P(y, 3) :- T(y)"
        )
        graph = CoordinationGraph.build(queries)
        # a's postcondition P(x,1) unifies with no head (P(x,2)? second
        # position 1 vs 2 clashes; P(y,3)? 1 vs 3 clashes).
        assert graph.edges_from_postcondition("a", 0) == []

    def test_self_edges_controlled_by_flag(self):
        queries = parse_queries("a: {P(x)} P(y) :- T(x), T(y)")
        with_self = CoordinationGraph.build(queries, include_self_edges=True)
        without = CoordinationGraph.build(queries, include_self_edges=False)
        assert with_self.graph.has_edge("a", "a")
        assert not without.graph.has_edge("a", "a")

    def test_duplicate_names_rejected(self):
        queries = parse_queries("a: {} P(x) :- T(x)") * 2
        with pytest.raises(MalformedQueryError):
            CoordinationGraph.build(queries)

    def test_multiple_heads_multiple_edges(self):
        queries = parse_queries(
            "a: {P(x), Q(x)} S(x) :- T(x); b: {} P(y), Q(y) :- T(y)"
        )
        graph = CoordinationGraph.build(queries)
        assert len(graph.edges_from_postcondition("a", 0)) == 1
        assert len(graph.edges_from_postcondition("a", 1)) == 1
        # Collapsed: one edge a -> b.
        assert graph.graph.successors("a") == {"b"}


class TestRestriction:
    def test_restricted_to_filters_everything(self):
        graph = CoordinationGraph.build(vacation_queries())
        sub = graph.restricted_to(["qC", "qG"])
        assert set(sub.names()) == {"qC", "qG"}
        assert all(
            e.source in ("qC", "qG") and e.target in ("qC", "qG")
            for e in sub.extended_edges
        )
        assert sub.graph.successors("qC") == {"qG"}

    def test_restriction_preserves_postcondition_index(self):
        graph = CoordinationGraph.build(vacation_queries())
        sub = graph.restricted_to(["qC", "qG"])
        assert len(sub.edges_from_postcondition("qG", 1)) == 1
