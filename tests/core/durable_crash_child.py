"""Subprocess target for the ``kill -9`` crash-recovery fuzz.

Each invocation is one *life* of a durable service: open the durability
directory (recovering whatever an earlier life made durable), verify
the recovered state is byte-identical to a never-crashed oracle fed the
stream prefix the durable journal says was executed, then continue the
stream from that index.  The parent test kills some lives with SIGKILL
at random points and lets the last one finish; a life that survives to
the end prints its observables as JSON on the final stdout line.

Exit codes: 0 = ran to completion, 3 = recovered state diverged from
the oracle (the assertion the whole harness exists for).

Usage::

    python durable_crash_child.py DIR SEED STORE PACE_MS
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from durable_testing import (  # noqa: E402 - path bootstrap above
    apply_op,
    build_stream,
    fresh_db,
    observables,
    oracle_observables,
)

from repro.core.service import ShardedCoordinationService  # noqa: E402
from repro.db import DurabilityConfig  # noqa: E402


def main() -> int:
    durable_dir, seed, store, pace_ms = sys.argv[1:5]
    pace = float(pace_ms) / 1000.0
    stream = build_stream(int(seed))
    service = ShardedCoordinationService(
        fresh_db(),
        shards=2,
        durability=DurabilityConfig(
            dir=Path(durable_dir),
            # fsync="never" is the point: kill -9 durability comes from
            # the unbuffered write() reaching the kernel, not fsync.
            fsync="never",
            snapshot_store=store,
            # Small interval so crashes land in every compaction window.
            snapshot_every=24,
        ),
    )
    start = service.durable.journal_len
    # Byte-identity check at the crash point: the recovered state must
    # equal a never-crashed service fed exactly the durable prefix.
    recovered = observables(service)
    expected = oracle_observables(stream[:start])
    if recovered != expected:
        print(
            json.dumps({"recovered": recovered, "expected": expected}),
            file=sys.stderr,
        )
        service.close()
        return 3
    # Tell the parent recovery finished (it starts its kill timer here).
    print(f"START {start}", flush=True)
    for op in stream[start:]:
        apply_op(service, op)
        if pace:
            time.sleep(pace)
    print(json.dumps(observables(service)), flush=True)
    service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
