"""Equivalence tests: the incremental online engine vs from-scratch.

The engine's arrival path is incremental everywhere — probe-based graph
extension, delta safety checks, union-find weak components, O(component)
deletion, cross-arrival component-state memoization.  None of that may
be observable: every arrival must produce exactly the coordination
graph, safety verdict, component, and chosen coordinating set that the
seed-style reference obtains by rebuilding with
``CoordinationGraph.build(pending)`` and running the SCC algorithm from
scratch.  Randomized arrival streams exercise acceptance, unsafe
rejection, unsatisfiable (waiting) components, satisfied-set deletion,
query-name reuse after deletion, mid-stream database inserts (cache
invalidation), and ``flush``.
"""

import random
from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.core import (
    CoordinationGraph,
    CoordinationEngine,
    EntangledQuery,
    QueryState,
    safety_report,
    scc_coordinate_on_graph,
)
from repro.errors import PreconditionError
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

DB_SIZE = 30
USER_SPAN = 40  # indexes ≥ DB_SIZE have no Members row: unsatisfiable bodies


def _wildcard_query(name: str) -> EntangledQuery:
    """A query whose postcondition matches *every* pending head.

    With at most one pending head this is accepted; with two or more it
    is unsafe (Definition 2) and must be rejected by both engines.
    """
    return EntangledQuery(
        name,
        postconditions=[Atom("R", [Variable("y"), Variable("z")])],
        head=[Atom("R", [Variable("v"), name])],
        body=[],
    )


class ReferenceEngine:
    """The seed arrival loop: rebuild everything from scratch each time."""

    def __init__(self, db) -> None:
        self.db = db
        self.pending: Dict[str, EntangledQuery] = {}

    def graph(self) -> CoordinationGraph:
        return CoordinationGraph.build(self.pending.values())

    def submit(
        self, query: EntangledQuery
    ) -> Tuple[List[str], Optional[Tuple[str, ...]], Tuple[str, ...]]:
        trial = list(self.pending.values()) + [query]
        graph = CoordinationGraph.build(trial)
        report = safety_report(graph)
        if not report.is_safe:
            raise PreconditionError("unsafe")
        self.pending[query.name] = query
        component = self._weak_component(graph, query.name)
        restricted = graph.restricted_to(component)
        result = scc_coordinate_on_graph(self.db, restricted)
        satisfied: Tuple[str, ...] = ()
        chosen = None
        if result.chosen is not None:
            chosen = result.chosen.members
            satisfied = chosen
            for name in satisfied:
                self.pending.pop(name, None)
        return component, chosen, satisfied

    def flush(self) -> Optional[Tuple[str, ...]]:
        result = scc_coordinate_on_graph(self.db, self.graph())
        if result.chosen is None:
            return None
        for name in result.chosen.members:
            self.pending.pop(name, None)
        return result.chosen.members

    def retract(self, name: str) -> None:
        if name not in self.pending:
            raise PreconditionError(f"query {name!r} is not pending")
        del self.pending[name]

    @staticmethod
    def _weak_component(graph: CoordinationGraph, start: str) -> List[str]:
        seen: Set[str] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbours = graph.graph.successors(node) | graph.graph.predecessors(
                node
            )
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return sorted(seen)


def _edge_multiset(graph: CoordinationGraph):
    return sorted(
        (e.source, e.post_index, e.target, e.head_index)
        for e in graph.extended_edges
    )


def _collapsed(graph: CoordinationGraph):
    return {
        name: frozenset(graph.graph.successors(name)) for name in graph.names()
    }


def _random_stream(rng: random.Random, length: int):
    """A reproducible arrival stream with name reuse and wildcards."""
    stream = []
    for step in range(length):
        if rng.random() < 0.08:
            stream.append(("wildcard", f"wild{step}"))
        elif rng.random() < 0.06:
            stream.append(("insert", step))
        else:
            index = rng.randrange(USER_SPAN)
            partner_count = rng.choice((0, 1, 1, 2, 3))
            partners = rng.sample(
                [i for i in range(USER_SPAN) if i != index],
                k=partner_count,
            )
            stream.append(("partner", index, partners))
    return stream


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("reuse_states", [True, False])
def test_incremental_engine_matches_reference(seed, reuse_states):
    rng = random.Random(seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)

    for event in _random_stream(rng, 45):
        if event[0] == "insert":
            # A mid-stream database insert: the engine's memoized
            # component states must not leak stale groundings.
            index = DB_SIZE + event[1] % (USER_SPAN - DB_SIZE)
            db.insert(
                "Members",
                (member_name(index), "region-x", "interest-x", 17),
            )
            continue
        if event[0] == "wildcard":
            query = _wildcard_query(event[1])
        else:
            _, index, partners = event
            name = member_name(index)
            if name in engine.pending():
                continue  # duplicate names are rejected by both; skip
            query = partner_query(name, [member_name(p) for p in partners])

        engine_error = reference_error = None
        outcome = None
        try:
            outcome = engine.submit(query)
        except PreconditionError as exc:
            engine_error = exc
        try:
            ref_component, ref_chosen, ref_satisfied = reference.submit(query)
        except PreconditionError as exc:
            reference_error = exc

        # Identical safety verdicts (acceptance or rejection).
        assert (engine_error is None) == (reference_error is None), (
            f"safety verdict diverged on {query.name!r}: "
            f"engine={engine_error!r} reference={reference_error!r}"
        )
        if engine_error is not None:
            continue

        assert list(outcome.component) == list(ref_component)
        engine_chosen = (
            None
            if outcome.result.chosen is None
            else outcome.result.chosen.members
        )
        assert engine_chosen == ref_chosen
        assert set(outcome.satisfied) == set(ref_satisfied)
        assert set(engine.pending()) == set(reference.pending)

        # The incrementally maintained graph must equal a from-scratch
        # rebuild of the surviving pending set, and agree on safety.
        rebuilt = reference.graph()
        live = engine.graph()
        assert set(live.names()) == set(rebuilt.names())
        assert _edge_multiset(live) == _edge_multiset(rebuilt)
        assert _collapsed(live) == _collapsed(rebuilt)
        assert live.safety_violations() == ()
        assert safety_report(live).is_safe

    # Drain both via flush until neither finds anything more.
    while True:
        result = engine.flush()
        engine_flush = None if result.chosen is None else result.chosen.members
        ref_flush = reference.flush()
        assert engine_flush == ref_flush
        assert set(engine.pending()) == set(reference.pending)
        if engine_flush is None:
            break
    assert _edge_multiset(engine.graph()) == _edge_multiset(reference.graph())


@pytest.mark.parametrize("reuse_states", [True, False])
def test_name_reuse_after_satisfaction(reuse_states):
    """A satisfied query's name may return with different content; no
    stale index entries or memoized states may survive under it."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)

    solo = partner_query(member_name(1), [])
    outcome = engine.submit(solo)
    component, chosen, _ = reference.submit(solo)
    assert outcome.coordinated and chosen == (member_name(1),)

    # Same name, different partners, resubmitted after deletion.
    reborn = partner_query(member_name(1), [member_name(2)])
    outcome = engine.submit(reborn)
    _, ref_chosen, _ = reference.submit(reborn)
    assert (
        None if outcome.result.chosen is None else outcome.result.chosen.members
    ) == ref_chosen
    assert _edge_multiset(engine.graph()) == _edge_multiset(reference.graph())

    # Its partner arrives: the pair coordinates in both engines.
    partner = partner_query(member_name(2), [member_name(1)])
    outcome = engine.submit(partner)
    _, ref_chosen, _ = reference.submit(partner)
    assert (
        None if outcome.result.chosen is None else outcome.result.chosen.members
    ) == ref_chosen
    assert set(engine.pending()) == set(reference.pending)


def test_component_states_cached_across_arrivals():
    """A waiting component's DB verdict is memoized: re-evaluating the
    grown component re-issues DB queries only for new sub-components."""
    def run(reuse):
        db = members_database(size=DB_SIZE, seed=2012)
        engine = CoordinationEngine(db, reuse_component_states=reuse)
        # Users beyond DB_SIZE have no Members row, so every component
        # survives preprocessing but fails (and waits) at the database.
        engine.submit(partner_query(member_name(DB_SIZE), []))
        hits = queries = 0
        for i in range(DB_SIZE + 1, DB_SIZE + 9):
            outcome = engine.submit(
                partner_query(member_name(i), [member_name(i - 1)])
            )
            hits += outcome.result.stats.extra.get("component_cache_hits", 0)
            queries += outcome.result.stats.db_queries
        return hits, queries, engine

    hits, queries, engine = run(True)
    assert hits == 8 and queries == 0
    hits, queries, _ = run(False)
    assert hits == 0 and queries == 8

    # Database inserts invalidate the memoized failures: the stalled
    # chain coordinates as soon as its missing rows appear.
    db = engine.db
    for i in range(DB_SIZE, DB_SIZE + 9):
        db.insert("Members", (member_name(i), "region-x", "interest-x", 9))
    result = engine.flush()
    assert result.chosen is not None
    assert len(result.chosen.members) == 9
    assert engine.pending() == ()


def test_unsafe_rejection_leaves_no_trace():
    """A rejected arrival must not perturb graph, components, or cache."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db)
    engine.submit(partner_query(member_name(3), [member_name(4)]))
    engine.submit(partner_query(member_name(4), [member_name(3), member_name(5)]))
    before_edges = _edge_multiset(engine.graph())
    before_pending = engine.pending()

    with pytest.raises(PreconditionError):
        engine.submit(_wildcard_query("wild"))

    assert engine.pending() == before_pending
    assert _edge_multiset(engine.graph()) == before_edges
    # The engine still accepts and coordinates afterwards.
    outcome = engine.submit(partner_query(member_name(5), []))
    assert outcome.coordinated


# ---------------------------------------------------------------------------
# Interleaved submit / retract / insert / flush streams
# ---------------------------------------------------------------------------
def _assert_equivalent(engine: CoordinationEngine, reference: ReferenceEngine):
    """Engine state must equal a from-scratch rebuild of the pending set."""
    rebuilt = reference.graph()
    live = engine.graph()
    assert set(live.names()) == set(rebuilt.names())
    assert _edge_multiset(live) == _edge_multiset(rebuilt)
    assert _collapsed(live) == _collapsed(rebuilt)
    assert live.safety_violations() == ()
    assert safety_report(live).is_safe
    assert set(engine.pending()) == set(reference.pending)
    for name in reference.pending:
        assert list(engine.component_of(name)) == ReferenceEngine._weak_component(
            rebuilt, name
        )


def _interleaved_stream(rng: random.Random, length: int):
    """Arrival stream with retractions and flushes mixed in."""
    stream = []
    for step in range(length):
        roll = rng.random()
        if roll < 0.07:
            stream.append(("wildcard", f"wild{step}"))
        elif roll < 0.13:
            stream.append(("insert", step))
        elif roll < 0.30:
            stream.append(("retract", rng.randrange(1 << 30)))
        elif roll < 0.36:
            stream.append(("flush",))
        else:
            index = rng.randrange(USER_SPAN)
            partner_count = rng.choice((0, 1, 1, 2, 3))
            partners = rng.sample(
                [i for i in range(USER_SPAN) if i != index],
                k=partner_count,
            )
            stream.append(("partner", index, partners))
    return stream


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("reuse_states", [True, False])
def test_interleaved_stream_matches_reference(seed, reuse_states):
    """Submit/retract/insert/flush interleavings: after *every* operation
    the engine's graph, components, safety verdicts, and chosen sets
    equal a from-scratch rebuild (including retract-then-resubmit name
    reuse, which the stream produces naturally)."""
    rng = random.Random(1000 + seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)

    for event in _interleaved_stream(rng, 60):
        kind = event[0]
        if kind == "insert":
            index = DB_SIZE + event[1] % (USER_SPAN - DB_SIZE)
            db.insert(
                "Members",
                (member_name(index), "region-x", "interest-x", 17),
            )
            continue
        if kind == "retract":
            pending = sorted(engine.pending())
            if not pending:
                continue
            name = pending[event[1] % len(pending)]
            handle = engine.retract(name)
            reference.retract(name)
            assert handle.state is QueryState.RETRACTED
            assert engine.status(name) is QueryState.RETRACTED
            _assert_equivalent(engine, reference)
            continue
        if kind == "flush":
            result = engine.flush()
            engine_flush = (
                None if result.chosen is None else result.chosen.members
            )
            assert engine_flush == reference.flush()
            _assert_equivalent(engine, reference)
            continue
        if kind == "wildcard":
            query = _wildcard_query(event[1])
        else:
            _, index, partners = event
            name = member_name(index)
            if name in engine.pending():
                continue
            query = partner_query(name, [member_name(p) for p in partners])

        engine_error = reference_error = None
        outcome = None
        try:
            outcome = engine.submit(query)
        except PreconditionError as exc:
            engine_error = exc
        try:
            ref_component, ref_chosen, _ = reference.submit(query)
        except PreconditionError as exc:
            reference_error = exc
        assert (engine_error is None) == (reference_error is None)
        if engine_error is not None:
            continue
        assert list(outcome.component) == list(ref_component)
        engine_chosen = (
            None if outcome.result.chosen is None else outcome.result.chosen.members
        )
        assert engine_chosen == ref_chosen
        _assert_equivalent(engine, reference)

    while True:
        result = engine.flush()
        engine_flush = None if result.chosen is None else result.chosen.members
        assert engine_flush == reference.flush()
        if engine_flush is None:
            break
    _assert_equivalent(engine, reference)


@pytest.mark.parametrize("reuse_states", [True, False])
def test_retract_then_resubmit_name_reuse(reuse_states):
    """A retracted name may return with different content; nothing keyed
    on the old query (edges, index entries, memoized states) survives."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)
    a, b, c = member_name(1), member_name(2), member_name(3)

    engine.submit(partner_query(a, [b]))
    reference.submit(partner_query(a, [b]))
    retracted = engine.retract(a)
    reference.retract(a)
    assert retracted.state is QueryState.RETRACTED
    _assert_equivalent(engine, reference)

    # Same name, different partner, resubmitted after retraction.
    engine.submit(partner_query(a, [c]))
    reference.submit(partner_query(a, [c]))
    _assert_equivalent(engine, reference)

    outcome = engine.submit(partner_query(c, [a]))
    _, ref_chosen, _ = reference.submit(partner_query(c, [a]))
    assert outcome.result.chosen is not None
    assert outcome.result.chosen.members == ref_chosen
    assert set(outcome.satisfied) == {a, c}
    assert engine.status(a) is QueryState.SATISFIED
    _assert_equivalent(engine, reference)


def test_retraction_path_is_in_place():
    """Retraction must not rebuild the graph or the union-find: the
    engine keeps the same mutable core and forest objects, and only the
    retracted component is re-split."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db)
    # A chain a -> b -> c (each waits on the next) plus an unrelated pair.
    a, b, c, d, e = (member_name(i) for i in (1, 2, 3, 4, 5))
    engine.submit(partner_query(a, [b]))
    engine.submit(partner_query(b, [c]))
    engine.submit(partner_query(c, [member_name(35)]))  # keeps chain waiting
    engine.submit(partner_query(d, [e]))

    core_before = engine._graph._core
    forest_before = engine._components
    unrelated_before = engine.component_of(d)

    engine.retract(b)

    assert engine._graph._core is core_before, "graph was rebuilt"
    assert engine._components is forest_before, "union-find was rebuilt"
    # The chain split into {a} and {c}; the unrelated pair is untouched.
    assert engine.component_of(a) == (a,)
    assert engine.component_of(c) == (c,)
    assert engine.component_of(d) == unrelated_before


@pytest.mark.parametrize("reuse_states", [True])
def test_unrelated_insert_keeps_component_cache(reuse_states):
    """Per-relation stamps: a write to a relation no pending body
    mentions evicts nothing; a write to a mentioned relation evicts."""
    db = members_database(size=DB_SIZE, seed=2012)
    db.create_relation("Audit", ["event", "at"])
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)

    # A waiting component whose body touches only Members.
    engine.submit(partner_query(member_name(DB_SIZE), []))
    outcome = engine.submit(
        partner_query(member_name(DB_SIZE + 1), [member_name(DB_SIZE)])
    )
    states = engine._component_states
    assert states is not None and len(states) > 0
    populated = dict(states)

    # Unrelated insert: every memoized state survives, and the next
    # evaluation is pure cache hits (zero database queries).
    db.insert("Audit", ("login", 1))
    outcome = engine.submit(
        partner_query(member_name(DB_SIZE + 2), [member_name(DB_SIZE + 1)])
    )
    assert outcome.result.stats.extra.get("component_cache_hits", 0) > 0
    for key in populated:
        assert key in engine._component_states

    # Insert into the mentioned relation: the stalled chain's states
    # are evicted and the chain coordinates once its rows exist.
    for i in range(DB_SIZE, DB_SIZE + 3):
        db.insert("Members", (member_name(i), "region-x", "interest-x", 9))
    result = engine.flush()
    assert result.chosen is not None
    assert len(result.chosen.members) == 3


def test_empty_domain_completion_is_not_stranded_by_relation_eviction():
    """A cached non-failed state with no assignment (free-variable
    completion failed on an empty active domain) depends on the whole
    domain, not on any body relation: an insert into *any* relation
    must evict it, or the component is stranded forever."""
    from repro.db import DatabaseBuilder

    db = DatabaseBuilder().table("Members", ["name"]).build()  # empty
    engine = CoordinationEngine(db)
    # Body-less query: evaluation trivially succeeds, but the head's
    # free variable cannot be completed over an empty domain.
    solo = EntangledQuery(
        "solo", postconditions=(), head=(Atom("R", [Variable("x")]),), body=()
    )
    handle = engine.submit(solo)
    assert handle.is_pending
    assert engine.flush().chosen is None

    db.insert("Members", ("alice",))  # the domain is now non-empty
    result = engine.flush()
    assert result.chosen is not None
    assert result.chosen.members == ("solo",)
    assert handle.state is QueryState.SATISFIED


def test_domain_filler_assignments_match_uncached_after_any_write():
    """A cached success whose assignment used the active-domain filler
    (min of the whole domain) depends on every relation: after an
    insert anywhere, the cached engine must return the same assignment
    an uncached engine recomputes (the scc_coordination contract)."""
    from repro.db import DatabaseBuilder

    def build_db():
        return (
            DatabaseBuilder()
            .table("T", ["name"])
            .rows("T", [("zz",)])
            .table("S", ["name"])       # a's body; stays empty
            .table("S2", ["name"])      # the unrelated write target
            .build()
        )

    def queries():
        # b and c: satisfiable bodies, free head variable -> filler.
        b = EntangledQuery(
            "b", (), (Atom("Rb", [Variable("v")]),), (Atom("T", [Variable("x")]),)
        )
        c = EntangledQuery(
            "c", (), (Atom("Rc", [Variable("v")]),), (Atom("T", [Variable("x")]),)
        )
        # a links them into one weak component; its own body fails.
        a = EntangledQuery(
            "a",
            (Atom("Rb", [Variable("u")]), Atom("Rc", [Variable("w")])),
            (Atom("Ra", [Variable("z")]),),
            (Atom("S", [Variable("z")]),),
        )
        return [b, c, a]

    results = {}
    for reuse in (True, False):
        db = build_db()
        engine = CoordinationEngine(db, reuse_component_states=reuse)
        handles = engine.submit_many(queries())
        # One component; chosen = {c} (name-order tiebreak), b cached.
        assert set(handles[2].satisfied) == {"c"}
        assert engine.status("b") is QueryState.PENDING
        # Unrelated insert changes the domain minimum to 'aa'.
        db.insert("S2", ("aa",))
        result = engine.flush()
        assert result.chosen is not None and result.chosen.members == ("b",)
        results[reuse] = sorted(
            (str(k), v) for k, v in result.chosen.assignment.items()
        )
    assert results[True] == results[False]
    assert ("b.v", "aa") in results[True]
