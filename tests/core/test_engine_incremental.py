"""Equivalence tests: the incremental online engine vs from-scratch.

The engine's arrival path is incremental everywhere — probe-based graph
extension, delta safety checks, union-find weak components, O(component)
deletion, cross-arrival component-state memoization.  None of that may
be observable: every arrival must produce exactly the coordination
graph, safety verdict, component, and chosen coordinating set that the
seed-style reference obtains by rebuilding with
``CoordinationGraph.build(pending)`` and running the SCC algorithm from
scratch.  Randomized arrival streams exercise acceptance, unsafe
rejection, unsatisfiable (waiting) components, satisfied-set deletion,
query-name reuse after deletion, mid-stream database inserts (cache
invalidation), and ``flush``.
"""

import random
from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.core import (
    CoordinationGraph,
    CoordinationEngine,
    EntangledQuery,
    safety_report,
    scc_coordinate_on_graph,
)
from repro.errors import PreconditionError
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

DB_SIZE = 30
USER_SPAN = 40  # indexes ≥ DB_SIZE have no Members row: unsatisfiable bodies


def _wildcard_query(name: str) -> EntangledQuery:
    """A query whose postcondition matches *every* pending head.

    With at most one pending head this is accepted; with two or more it
    is unsafe (Definition 2) and must be rejected by both engines.
    """
    return EntangledQuery(
        name,
        postconditions=[Atom("R", [Variable("y"), Variable("z")])],
        head=[Atom("R", [Variable("v"), name])],
        body=[],
    )


class ReferenceEngine:
    """The seed arrival loop: rebuild everything from scratch each time."""

    def __init__(self, db) -> None:
        self.db = db
        self.pending: Dict[str, EntangledQuery] = {}

    def graph(self) -> CoordinationGraph:
        return CoordinationGraph.build(self.pending.values())

    def submit(
        self, query: EntangledQuery
    ) -> Tuple[List[str], Optional[Tuple[str, ...]], Tuple[str, ...]]:
        trial = list(self.pending.values()) + [query]
        graph = CoordinationGraph.build(trial)
        report = safety_report(graph)
        if not report.is_safe:
            raise PreconditionError("unsafe")
        self.pending[query.name] = query
        component = self._weak_component(graph, query.name)
        restricted = graph.restricted_to(component)
        result = scc_coordinate_on_graph(self.db, restricted)
        satisfied: Tuple[str, ...] = ()
        chosen = None
        if result.chosen is not None:
            chosen = result.chosen.members
            satisfied = chosen
            for name in satisfied:
                self.pending.pop(name, None)
        return component, chosen, satisfied

    def flush(self) -> Optional[Tuple[str, ...]]:
        result = scc_coordinate_on_graph(self.db, self.graph())
        if result.chosen is None:
            return None
        for name in result.chosen.members:
            self.pending.pop(name, None)
        return result.chosen.members

    @staticmethod
    def _weak_component(graph: CoordinationGraph, start: str) -> List[str]:
        seen: Set[str] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbours = graph.graph.successors(node) | graph.graph.predecessors(
                node
            )
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return sorted(seen)


def _edge_multiset(graph: CoordinationGraph):
    return sorted(
        (e.source, e.post_index, e.target, e.head_index)
        for e in graph.extended_edges
    )


def _collapsed(graph: CoordinationGraph):
    return {
        name: frozenset(graph.graph.successors(name)) for name in graph.names()
    }


def _random_stream(rng: random.Random, length: int):
    """A reproducible arrival stream with name reuse and wildcards."""
    stream = []
    for step in range(length):
        if rng.random() < 0.08:
            stream.append(("wildcard", f"wild{step}"))
        elif rng.random() < 0.06:
            stream.append(("insert", step))
        else:
            index = rng.randrange(USER_SPAN)
            partner_count = rng.choice((0, 1, 1, 2, 3))
            partners = rng.sample(
                [i for i in range(USER_SPAN) if i != index],
                k=partner_count,
            )
            stream.append(("partner", index, partners))
    return stream


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("reuse_states", [True, False])
def test_incremental_engine_matches_reference(seed, reuse_states):
    rng = random.Random(seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)

    for event in _random_stream(rng, 45):
        if event[0] == "insert":
            # A mid-stream database insert: the engine's memoized
            # component states must not leak stale groundings.
            index = DB_SIZE + event[1] % (USER_SPAN - DB_SIZE)
            db.insert(
                "Members",
                (member_name(index), "region-x", "interest-x", 17),
            )
            continue
        if event[0] == "wildcard":
            query = _wildcard_query(event[1])
        else:
            _, index, partners = event
            name = member_name(index)
            if name in engine.pending():
                continue  # duplicate names are rejected by both; skip
            query = partner_query(name, [member_name(p) for p in partners])

        engine_error = reference_error = None
        outcome = None
        try:
            outcome = engine.submit(query)
        except PreconditionError as exc:
            engine_error = exc
        try:
            ref_component, ref_chosen, ref_satisfied = reference.submit(query)
        except PreconditionError as exc:
            reference_error = exc

        # Identical safety verdicts (acceptance or rejection).
        assert (engine_error is None) == (reference_error is None), (
            f"safety verdict diverged on {query.name!r}: "
            f"engine={engine_error!r} reference={reference_error!r}"
        )
        if engine_error is not None:
            continue

        assert list(outcome.component) == list(ref_component)
        engine_chosen = (
            None
            if outcome.result.chosen is None
            else outcome.result.chosen.members
        )
        assert engine_chosen == ref_chosen
        assert set(outcome.satisfied) == set(ref_satisfied)
        assert set(engine.pending()) == set(reference.pending)

        # The incrementally maintained graph must equal a from-scratch
        # rebuild of the surviving pending set, and agree on safety.
        rebuilt = reference.graph()
        live = engine.graph()
        assert set(live.names()) == set(rebuilt.names())
        assert _edge_multiset(live) == _edge_multiset(rebuilt)
        assert _collapsed(live) == _collapsed(rebuilt)
        assert live.safety_violations() == ()
        assert safety_report(live).is_safe

    # Drain both via flush until neither finds anything more.
    while True:
        result = engine.flush()
        engine_flush = None if result.chosen is None else result.chosen.members
        ref_flush = reference.flush()
        assert engine_flush == ref_flush
        assert set(engine.pending()) == set(reference.pending)
        if engine_flush is None:
            break
    assert _edge_multiset(engine.graph()) == _edge_multiset(reference.graph())


@pytest.mark.parametrize("reuse_states", [True, False])
def test_name_reuse_after_satisfaction(reuse_states):
    """A satisfied query's name may return with different content; no
    stale index entries or memoized states may survive under it."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db, reuse_component_states=reuse_states)
    reference = ReferenceEngine(db)

    solo = partner_query(member_name(1), [])
    outcome = engine.submit(solo)
    component, chosen, _ = reference.submit(solo)
    assert outcome.coordinated and chosen == (member_name(1),)

    # Same name, different partners, resubmitted after deletion.
    reborn = partner_query(member_name(1), [member_name(2)])
    outcome = engine.submit(reborn)
    _, ref_chosen, _ = reference.submit(reborn)
    assert (
        None if outcome.result.chosen is None else outcome.result.chosen.members
    ) == ref_chosen
    assert _edge_multiset(engine.graph()) == _edge_multiset(reference.graph())

    # Its partner arrives: the pair coordinates in both engines.
    partner = partner_query(member_name(2), [member_name(1)])
    outcome = engine.submit(partner)
    _, ref_chosen, _ = reference.submit(partner)
    assert (
        None if outcome.result.chosen is None else outcome.result.chosen.members
    ) == ref_chosen
    assert set(engine.pending()) == set(reference.pending)


def test_component_states_cached_across_arrivals():
    """A waiting component's DB verdict is memoized: re-evaluating the
    grown component re-issues DB queries only for new sub-components."""
    def run(reuse):
        db = members_database(size=DB_SIZE, seed=2012)
        engine = CoordinationEngine(db, reuse_component_states=reuse)
        # Users beyond DB_SIZE have no Members row, so every component
        # survives preprocessing but fails (and waits) at the database.
        engine.submit(partner_query(member_name(DB_SIZE), []))
        hits = queries = 0
        for i in range(DB_SIZE + 1, DB_SIZE + 9):
            outcome = engine.submit(
                partner_query(member_name(i), [member_name(i - 1)])
            )
            hits += outcome.result.stats.extra.get("component_cache_hits", 0)
            queries += outcome.result.stats.db_queries
        return hits, queries, engine

    hits, queries, engine = run(True)
    assert hits == 8 and queries == 0
    hits, queries, _ = run(False)
    assert hits == 0 and queries == 8

    # Database inserts invalidate the memoized failures: the stalled
    # chain coordinates as soon as its missing rows appear.
    db = engine.db
    for i in range(DB_SIZE, DB_SIZE + 9):
        db.insert("Members", (member_name(i), "region-x", "interest-x", 9))
    result = engine.flush()
    assert result.chosen is not None
    assert len(result.chosen.members) == 9
    assert engine.pending() == ()


def test_unsafe_rejection_leaves_no_trace():
    """A rejected arrival must not perturb graph, components, or cache."""
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(db)
    engine.submit(partner_query(member_name(3), [member_name(4)]))
    engine.submit(partner_query(member_name(4), [member_name(3), member_name(5)]))
    before_edges = _edge_multiset(engine.graph())
    before_pending = engine.pending()

    with pytest.raises(PreconditionError):
        engine.submit(_wildcard_query("wild"))

    assert engine.pending() == before_pending
    assert _edge_multiset(engine.graph()) == before_edges
    # The engine still accepts and coordinates afterwards.
    outcome = engine.submit(partner_query(member_name(5), []))
    assert outcome.coordinated
