"""Property test: printing and re-parsing an entangled query round-trips.

``str(EntangledQuery)`` uses the same textual syntax the parser reads,
so for any query whose variables are plain (non-namespaced, lowercase)
the composition parse ∘ str must be the identity on all three parts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EntangledQuery, parse_query
from repro.logic import Atom, Constant, Variable

_variables = st.sampled_from(["x", "y", "z", "w1", "k2"]).map(Variable)
_constants = st.one_of(
    st.integers(min_value=-50, max_value=999).map(Constant),
    st.sampled_from(["Paris", "Zurich", "Chris", "G7"]).map(Constant),
    st.sampled_from(["lower case", "quoted-value", "1abc"]).map(Constant),
)
_terms = st.one_of(_variables, _constants)
_relations = st.sampled_from(["R", "Q", "Flights", "C1"])

_atoms = st.builds(
    Atom,
    _relations,
    st.lists(_terms, min_size=0, max_size=3),
)


@st.composite
def _queries(draw):
    posts = draw(st.lists(_atoms, max_size=3))
    head = draw(st.lists(_atoms, max_size=2))
    body = draw(st.lists(_atoms, max_size=3))
    if not (posts or head or body):
        head = [draw(_atoms)]
    return EntangledQuery("q", posts, head, body)


@given(_queries())
@settings(max_examples=300)
def test_parse_of_str_is_identity(query):
    reparsed = parse_query(str(query), name="q")
    assert reparsed.postconditions == query.postconditions
    assert reparsed.head == query.head
    assert reparsed.body == query.body


@given(_queries())
@settings(max_examples=100)
def test_standardization_commutes_with_round_trip(query):
    reparsed = parse_query(str(query), name="q")
    assert reparsed.standardized().variables() == query.standardized().variables()
