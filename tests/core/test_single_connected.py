"""Unit tests for the single-connected solver (Theorem 3)."""

import pytest

from repro.core import (
    find_coordinating_set,
    parse_queries,
    single_connected_coordinate,
    verify_result_set,
)
from repro.db import DatabaseBuilder
from repro.errors import PreconditionError


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("T", ["v"])
        .rows("T", [(1,), (2,), (3,)])
        .table("U", ["v"])
        .rows("U", [(2,)])
        .build()
    )


class TestHappyPath:
    def test_chain(self, db):
        queries = parse_queries(
            """
            a: {P2(x)} P1(x) :- T(x);
            b: {P3(y)} P2(y) :- T(y);
            c: {} P3(z) :- T(z);
            """
        )
        result = single_connected_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"a", "b", "c"}
        assert verify_result_set(db, queries, result.chosen).ok
        # Unification chains one value through the whole chain.
        assert result.chosen.value_of("a", "x") == result.chosen.value_of("c", "z")

    def test_unsafe_fanout_tries_alternatives(self, db):
        # a's single postcondition unifies with heads of b and c; b's
        # body is unsatisfiable, so the solver must fall through to c.
        queries = parse_queries(
            """
            a: {M(x)} A(x) :- T(x);
            b: {} M(y) :- U(y), T(y);
            c: {} M(z) :- T(z);
            """
        )
        # Make b's body partially impossible: U has only value 2; that's
        # fine — instead force failure via a constant clash.
        queries = parse_queries(
            """
            a: {M(x, 1)} A(x) :- T(x);
            b: {} M(y, 2) :- T(y);
            c: {} M(z, w) :- T(z), T(w);
            """
        )
        result = single_connected_coordinate(db, queries, strict=False)
        assert result.found
        best = result.chosen
        assert "a" in best and "c" in best

    def test_cycle_component(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- T(x);
            b: {Q(y)} P(y) :- T(y);
            """
        )
        result = single_connected_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"a", "b"}

    def test_failure_when_no_grounding(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- T(x), U(x);
            b: {Q(y)} P(y) :- U(y);
            """
        )
        # Satisfiable actually: T∩U = {2}; tighten to impossible:
        queries = parse_queries(
            """
            a: {P(1)} Q(x) :- U(x);
            b: {} P(3) :- ∅;
            """
        )
        result = single_connected_coordinate(db, queries, strict=False)
        # a's post P(1) cannot unify with P(3): preprocessing removes a;
        # b survives alone.
        assert result.found
        assert result.chosen.member_set() == {"b"}


class TestPreconditions:
    def test_strict_rejects_two_postconditions(self, db):
        queries = parse_queries(
            """
            a: {P(x), Q(x)} S(x) :- T(x);
            b: {} P(y) :- T(y);
            c: {} Q(z) :- T(z);
            """
        )
        with pytest.raises(PreconditionError):
            single_connected_coordinate(db, queries)

    def test_strict_rejects_diamond(self, db):
        queries = parse_queries(
            """
            a: {M(x)} A(x) :- T(x);
            b: {D(y)} M(y) :- T(y);
            c: {D(z)} M(z) :- T(z);
            d: {} D(w) :- T(w);
            """
        )
        with pytest.raises(PreconditionError):
            single_connected_coordinate(db, queries)

    def test_non_strict_still_correct_on_diamond(self, db):
        queries = parse_queries(
            """
            a: {M(x)} A(x) :- T(x);
            b: {D(y)} M(y) :- T(y);
            c: {D(z)} M(z) :- T(z);
            d: {} D(w) :- T(w);
            """
        )
        result = single_connected_coordinate(db, queries, strict=False)
        assert result.found
        assert verify_result_set(db, queries, result.chosen).ok


class TestCostAndAgreement:
    def test_linear_db_queries_on_chain(self, db):
        source = ";".join(
            f"q{i}: {{P{i + 1}(x{i})}} P{i}(x{i}) :- T(x{i})" for i in range(10)
        )
        source += "; q10: {} P10(y) :- T(y)"
        queries = parse_queries(source)
        result = single_connected_coordinate(db, queries)
        assert result.found
        # Theorem 3: linear number of database queries.  Each component
        # issues one satisfiability probe plus one grounding query.
        assert result.stats.db_queries <= 2 * len(queries)

    def test_agrees_with_bruteforce(self, db):
        cases = [
            "a: {P(x)} Q(x) :- T(x); b: {} P(y) :- T(y)",
            "a: {P(1)} Q(x) :- T(x); b: {} P(2) :- ∅",
            "a: {P(x)} Q(x) :- U(x); b: {} P(y) :- T(y)",
        ]
        for source in cases:
            queries = parse_queries(source)
            exact = find_coordinating_set(db, queries)
            ours = single_connected_coordinate(db, queries, strict=False)
            assert (exact is not None) == ours.found, source
