"""Shared helpers for the sharded-service equivalence tests.

Used by both the serial-service suite (``test_service.py``) and the
concurrent-executor suite (``test_concurrent_service.py``): workload
query builders, the one-component-one-shard invariant check, and the
drive-both-ends stream runner that asserts byte-identical outcomes
against a single-engine oracle.
"""

import random
from collections import Counter
from typing import List, Optional, Tuple

from repro.core import (
    CoordinationEngine,
    EntangledQuery,
    QueryState,
    ShardedCoordinationService,
)
from repro.errors import PreconditionError
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import partner_query

DB_SIZE = 30
USER_SPAN = 40


def flight_query(user: str, partners: List[str]) -> EntangledQuery:
    """Travellers coordinating with named partners over the Flights
    table (the Gwyneth/Chris shape of Section 2.1)."""
    flight = Variable("f")
    body = [
        Atom(
            "Flights",
            [flight, Variable("dest"), Variable("day"),
             Variable("src"), Variable("airline")],
        )
    ]
    posts = [
        Atom("R", [Variable(f"y{i}"), partner])
        for i, partner in enumerate(partners)
    ]
    head = [Atom("R", [flight, user])]
    return EntangledQuery(user, posts, head, body)


def assert_invariants(service: ShardedCoordinationService) -> None:
    """Every weak component lives entirely inside one shard, and the
    routing table agrees with the shards' pending pools."""
    routed = dict(service._shard_of)
    seen = set()
    for index, engine in enumerate(service._engines):
        for name in engine.pending():
            assert routed.get(name) == index
            seen.add(name)
            for member in engine.component_of(name):
                assert routed.get(member) == index
    assert seen == set(routed)


def chosen_bytes(result) -> Optional[Tuple]:
    """A fully comparable rendering of a chosen set (members + values)."""
    if result is None or result.chosen is None:
        return None
    chosen = result.chosen
    return (
        chosen.members,
        tuple(sorted((str(k), v) for k, v in chosen.assignment.items())),
    )


def run_equivalent_streams(service, engine, events) -> None:
    """Drive both ends with one stream; assert identical observables."""
    for event in events:
        if event[0] == "retract":
            pending = sorted(engine.pending())
            if not pending:
                continue
            name = pending[event[1] % len(pending)]
            service_handle = service.retract(name)
            engine.retract(name)
            assert service_handle.state is QueryState.RETRACTED
        else:
            query = event[1]
            service_error = engine_error = None
            service_handle = engine_handle = None
            try:
                service_handle = service.submit(query)
            except PreconditionError as exc:
                service_error = exc
            try:
                engine_handle = engine.submit(query)
            except PreconditionError as exc:
                engine_error = exc
            assert (service_error is None) == (engine_error is None)
            if service_error is not None:
                continue
            assert service_handle.state is engine_handle.state
            assert service_handle.satisfied == engine_handle.satisfied
            assert chosen_bytes(service_handle.result) == chosen_bytes(
                engine_handle.result
            )
        assert set(service.pending()) == set(engine.pending())
        assert_invariants(service)


def replay_into_oracle(journal, db):
    """Replay a service journal into a fresh single engine; return the
    oracle outcomes: (engine, resolution Counter, per-entry raise log).

    The one journal-to-oracle interpreter shared by every fuzz suite —
    a new journal entry kind gets handled here once, so the concurrent
    and backend fuzzes can never diverge in what they replay."""
    engine = CoordinationEngine(db)
    resolutions = Counter()

    @engine.on_resolved
    def _collect(handle):
        resolutions[
            (handle.query, handle.state.value, tuple(handle.satisfied_with))
        ] += 1

    raise_log = []
    for entry in journal:
        kind = entry[0]
        if kind == "submit":
            _, query, _service_raised = entry
            try:
                engine.submit(query)
            except PreconditionError:
                raise_log.append(True)
            else:
                raise_log.append(False)
        elif kind == "submit_many":
            engine.submit_many(entry[1])
            raise_log.append(False)
        elif kind == "retract":
            _, name, _service_raised = entry
            try:
                engine.retract(name)
            except PreconditionError:
                raise_log.append(True)
            else:
                raise_log.append(False)
        elif kind == "insert":
            engine.db.insert(entry[1], entry[2])
            raise_log.append(False)
        elif kind == "delete":
            engine.db.delete(entry[1], entry[2])
            raise_log.append(False)
        elif kind == "flush_drain":
            while True:
                result = engine.flush()
                if result.chosen is None:
                    break
            raise_log.append(False)
        elif kind == "flush":
            # A single service flush retires up to one set *per shard*
            # — a placement-dependent subset a single engine cannot
            # reproduce.  Fuzz streams must use flush_drain (whose
            # fixpoint is placement-independent); a plain flush in a
            # journal under replay is a test-design error, not a
            # service bug, so fail loudly instead of diverging later.
            raise AssertionError(
                "journaled plain flush() is not oracle-replayable; "
                "fuzz streams must call flush_drain()"
            )
        else:  # pragma: no cover - journal is produced by the service
            raise AssertionError(f"unknown journal entry {entry!r}")
    return engine, resolutions, raise_log


def partner_stream(rng: random.Random, length: int):
    """A random submit/retract event stream over the partner workload."""
    events = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.18:
            events.append(("retract", rng.randrange(1 << 30)))
        else:
            index = rng.randrange(USER_SPAN)
            partners = rng.sample(
                [i for i in range(USER_SPAN) if i != index],
                k=rng.choice((0, 1, 1, 2, 3)),
            )
            events.append(
                (
                    "submit",
                    partner_query(
                        member_name(index), [member_name(p) for p in partners]
                    ),
                )
            )
    return events
