"""Remote TCP shard executor: equivalence, fuzz, failover, hygiene.

The headline claim extends the process executor's:
``ShardedCoordinationService(db, ServiceConfig(executor="remote",
remote_shards=...))`` — each shard's engine on a :class:`ShardHost`
reached over TCP with a warm-up snapshot and tombstone-aware sync —
must produce byte-identical outcomes to the serial service and the
single engine.  Asserted by:

* deterministic equivalence streams and the multi-threaded
  journal-replay fuzz (now with ``delete`` traffic), replayed from the
  service's linearized journal into a single-engine oracle;
* handshake/version-negotiation regressions: a peer speaking a foreign
  wire version, a malformed hello, or plain garbage earns a clean
  error reply — the host never crashes and keeps serving;
* failover: killing a shard host mid-stream re-homes its components to
  a survivor (handles stay pending, coordination continues) and a
  ``kill -9`` fuzz against real host subprocesses checks the final and
  recovered state against a never-crashed oracle on both snapshot
  stores;

plus an autouse fixture asserting no shard session, socket, or host
subprocess leaks.
"""

import os
import random
import re
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.core import (
    CoordinationEngine,
    QueryState,
    ServiceConfig,
    ShardHost,
    ShardedCoordinationService,
)
from repro.db import DurabilityConfig, wire
from repro.errors import ConcurrencyError, PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query

from durable_testing import (
    apply_op,
    build_stream,
    fresh_db,
    observables,
    oracle_observables,
)
from service_testing import (
    DB_SIZE,
    assert_invariants,
    chosen_bytes,
    partner_stream,
    replay_into_oracle,
    run_equivalent_streams,
)

DRAIN_TIMEOUT = 60.0
SRC_DIR = Path(repro.__file__).resolve().parents[1]


@pytest.fixture
def hosts():
    """A shard-host factory whose teardown asserts session hygiene."""
    created = []

    def make(count):
        batch = []
        for _ in range(count):
            host = ShardHost()
            host.start()
            created.append(host)
            batch.append(host)
        return batch

    yield make
    try:
        deadline = time.monotonic() + 10.0
        for host in created:
            while host.session_count and time.monotonic() < deadline:
                time.sleep(0.05)
            assert host.session_count == 0, (
                f"leaked shard sessions on {host.address}"
            )
    finally:
        for host in created:
            host.close()


def remote_service(db, shard_hosts, **kwargs) -> ShardedCoordinationService:
    config = ServiceConfig(
        executor="remote",
        remote_shards=tuple(host.address for host in shard_hosts),
        **kwargs,
    )
    return ShardedCoordinationService(db, config)


# ---------------------------------------------------------------------------
# Blocking equivalence against the single-engine oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(2))
def test_partner_workload_equivalence_with_remote_workers(hosts, seed):
    rng = random.Random(4000 + seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with remote_service(db, hosts(3), workers=3) as service:
        assert service.backend_name == "tcp-replicated"
        run_equivalent_streams(service, engine, partner_stream(rng, 50))
        assert service.drain(timeout=DRAIN_TIMEOUT)


def test_partner_workload_equivalence_with_serial_remote_shards(hosts):
    rng = random.Random(41)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with remote_service(db, hosts(2)) as service:
        run_equivalent_streams(service, engine, partner_stream(rng, 40))


def test_warm_up_snapshot_makes_prestate_visible(hosts):
    # Rows inserted before the service connects must be evaluated on
    # the remote replicas without any explicit sync op: the connect-time
    # warm-up ships them as one bulk snapshot.
    db = members_database(size=DB_SIZE, seed=2012)
    with remote_service(db, hosts(2)) as service:
        a = service.submit(partner_query(member_name(1), [member_name(2)]))
        b = service.submit(partner_query(member_name(2), [member_name(1)]))
        assert a.state is QueryState.SATISFIED
        assert set(b.satisfied_with) == {member_name(1), member_name(2)}


@pytest.mark.parametrize("workers", [None, 2])
def test_insert_and_delete_barrier_syncs_remote_replicas(hosts, workers):
    # The deletion-aware sync path: a row deleted after admission must
    # vanish from the remote replicas before the flush that would have
    # used it; re-inserting it revives the coordination.
    db = members_database(size=DB_SIZE, seed=2012)
    oracle = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    kwargs = {"workers": workers} if workers else {}
    extra = member_name(900)
    row = (extra, "r", "i", 5)
    with remote_service(db, hosts(2), **kwargs) as service:
        query = partner_query(extra, [extra])
        (service.submit_nowait if workers else service.submit)(query)
        oracle.submit(query)
        for target in (service, oracle.db):
            target.insert("Members", row)
        for target in (service, oracle.db):
            assert target.delete("Members", row)
        assert service.drain(timeout=DRAIN_TIMEOUT)
        service_results = service.flush_drain()
        while oracle.flush().chosen is not None:
            pass
        # The member row is gone again: nobody coordinates.
        assert all(r.chosen is None for r in service_results)
        assert set(service.pending()) == set(oracle.pending()) == {extra}
        for target in (service, oracle.db):
            target.insert("Members", row)
        assert service.drain(timeout=DRAIN_TIMEOUT)
        results = service.flush_drain()
        oracle_result = oracle.flush()
        assert chosen_bytes(oracle_result) in [
            chosen_bytes(result) for result in results
        ]
        assert set(service.pending()) == set(oracle.pending()) == set()


# ---------------------------------------------------------------------------
# Journal-replay fuzz: interleaved streams (with deletes) vs the oracle
# ---------------------------------------------------------------------------
def _fuzz_client(service, thread_index, ops, errors):
    rng = random.Random(9500 + thread_index)
    base = 200 * thread_index
    mine = [member_name(base + i) for i in range(15)]
    others = [
        member_name(200 * t + i)
        for t in range(3)
        if t != thread_index
        for i in range(15)
    ]
    fuzz_row = lambda name: (name, "region-f", "interest-f", thread_index)
    submitted = []
    try:
        for _ in range(ops):
            roll = rng.random()
            try:
                if roll < 0.35:
                    name = rng.choice(mine)
                    partners = rng.sample(
                        mine + others, k=rng.choice((0, 1, 1, 2))
                    )
                    service.submit(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.55:
                    name = rng.choice(mine)
                    partners = rng.sample(mine, k=rng.choice((0, 1)))
                    service.submit_nowait(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.68 and submitted:
                    service.retract(rng.choice(submitted))
                elif roll < 0.78:
                    service.insert("Members", fuzz_row(rng.choice(mine + others)))
                elif roll < 0.86:
                    # Deletes hit rows this fuzz inserted (or will) —
                    # absent-row deletes are journaled no-ops on both
                    # ends, so every interleaving stays replayable.
                    service.delete("Members", fuzz_row(rng.choice(mine + others)))
                elif roll < 0.93:
                    service.flush_drain()
                else:
                    service.drain(timeout=DRAIN_TIMEOUT)
            except PreconditionError:
                pass  # journaled; the oracle replay must raise identically
    except BaseException as error:  # noqa: BLE001 - reported by the test body
        errors.append(error)


def test_multithreaded_fuzz_matches_single_engine_oracle(hosts):
    db = members_database(size=DB_SIZE, seed=2012)
    service = remote_service(db, hosts(3), workers=3)
    service.journal = []
    resolutions = Counter()

    @service.on_resolved
    def _collect(handle):
        resolutions[
            (handle.query, handle.state.value, tuple(handle.satisfied_with))
        ] += 1

    errors = []
    threads = [
        threading.Thread(
            target=_fuzz_client, args=(service, t, 40, errors), daemon=True
        )
        for t in range(3)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "fuzz client hung"
        assert not errors, errors
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert_invariants(service)

        journal = list(service.journal)
        assert any(entry[0] == "delete" for entry in journal)
        service_raises = [
            entry[-1] for entry in journal if entry[0] in ("submit", "retract")
        ]
        oracle, oracle_resolutions, raise_log = replay_into_oracle(
            journal, members_database(size=DB_SIZE, seed=2012)
        )
        assert db.sizes() == oracle.db.sizes()
        oracle_raises = [
            flag
            for entry, flag in zip(journal, raise_log)
            if entry[0] in ("submit", "retract")
        ]
        assert service_raises == oracle_raises
        assert set(service.pending()) == set(oracle.pending())
        assert resolutions == oracle_resolutions
        for entry in journal:
            if entry[0] == "submit":
                name = entry[1].name
                assert service.status(name) == oracle.status(name)
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Handshake and version negotiation (the host never crashes on garbage)
# ---------------------------------------------------------------------------
def _raw_roundtrip(address, payload: bytes) -> bytes:
    """Send one length-prefixed payload; return the raw reply frame
    (b"" when the host closed the connection instead)."""
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        prefix = b""
        while len(prefix) < 4:
            chunk = sock.recv(4 - len(prefix))
            if not chunk:
                return b""
            prefix += chunk
        (length,) = struct.unpack(">I", prefix)
        body = b""
        while len(body) < length:
            chunk = sock.recv(length - len(body))
            if not chunk:
                return b""
            body += chunk
        return body


def _error_message(reply_frame: bytes) -> str:
    reply = wire.loads(reply_frame)
    assert reply.get("error") is not None, reply
    return reply["error"]["message"]


def test_host_rejects_foreign_wire_version_with_clear_error(hosts):
    (host,) = hosts(1)
    for foreign in (wire.VERSION - 1, wire.VERSION + 1):
        frame = bytearray(wire.dumps({"op": "hello", "lane": "main"}))
        frame[2] = foreign
        message = _error_message(_raw_roundtrip(host.address, bytes(frame)))
        # The reply is a *current-version* error frame naming both
        # versions — the operator learns what to upgrade, and the host
        # survives to serve a correctly-versioned session right after.
        assert "version mismatch" in message
        assert str(foreign) in message and str(wire.VERSION) in message
    db = members_database(size=DB_SIZE, seed=2012)
    with remote_service(db, [host]) as service:
        assert service.submit(partner_query(member_name(1), [])).satisfied


def test_host_rejects_malformed_hello_and_unknown_session(hosts):
    (host,) = hosts(1)
    assert "hello" in _error_message(
        _raw_roundtrip(host.address, wire.dumps({"op": "evaluate"}))
    )
    assert "unknown session" in _error_message(
        _raw_roundtrip(
            host.address,
            wire.dumps(
                {"op": "hello", "lane": "control", "session": "no-such"}
            ),
        )
    )


def test_host_survives_garbage_frames(hosts):
    (host,) = hosts(1)
    rng = random.Random(13)
    for size in (0, 1, 3, 7, 64, 500):
        payload = bytes(rng.randrange(256) for _ in range(size))
        reply = _raw_roundtrip(host.address, payload)
        if reply:  # error reply, never a crash or a non-error decode
            assert wire.loads(reply).get("error") is not None
    db = members_database(size=DB_SIZE, seed=2012)
    with remote_service(db, [host]) as service:
        assert service.submit(partner_query(member_name(2), [])).satisfied


# ---------------------------------------------------------------------------
# Failover: a dead host's components re-home to a survivor
# ---------------------------------------------------------------------------
def test_dead_host_fails_over_and_coordination_continues(hosts):
    pair = hosts(2)
    db = members_database(size=DB_SIZE, seed=2012)
    service = remote_service(db, pair)
    try:
        handles = [
            service.submit(partner_query(member_name(i), [member_name(500 + i)]))
            for i in range(4)
        ]
        victim = service.shard_of(member_name(0))
        orphaned = [
            h for h in handles if service.shard_of(h.query) == victim
        ]
        pair[victim].close()  # abrupt: every connection drops mid-session

        # The next arrival discovers the death and re-homes the orphans
        # to the survivor — nothing is rejected.  The arrival is the
        # partner one orphan has been waiting for, so the re-homed
        # component completes its coordination on the new shard.
        orphan = orphaned[0]
        awaited = member_name(500 + int(orphan.query[-5:]))
        service.insert("Members", (awaited, "r", "i", 1))
        arrival = service.submit(partner_query(awaited, [orphan.query]))
        assert service.failovers >= len(orphaned)
        assert service.live_shards == (1 - victim,)
        assert arrival.state is QueryState.SATISFIED
        assert orphan.state is QueryState.SATISFIED
        for handle in handles:
            assert handle.state is not QueryState.REJECTED
        survivor_home = 1 - victim
        for name in service.pending():
            assert service.shard_of(name) == survivor_home
        assert service.drain(timeout=DRAIN_TIMEOUT)
        service.flush_drain()
        assert_invariants(service)
    finally:
        service.close()


def test_no_survivor_left_raises_cleanly(hosts):
    pair = hosts(2)
    db = members_database(size=DB_SIZE, seed=2012)
    service = remote_service(db, pair)
    try:
        service.submit(partner_query(member_name(0), [member_name(500)]))
        for host in pair:
            host.close()
        with pytest.raises(ConcurrencyError):
            service.submit(partner_query(member_name(1), []))
        assert service.live_shards == ()
    finally:
        service.close()


# ---------------------------------------------------------------------------
# kill -9 fuzz: real host subprocesses, durable service, both stores
# ---------------------------------------------------------------------------
def _spawn_host_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-host", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"on ([\d.]+):(\d+)", line)
    assert match, f"no bound address in {line!r}"
    return process, (match.group(1), int(match.group(2)))


@pytest.mark.parametrize("snapshot_store", ["file", "sqlite"])
@pytest.mark.parametrize("seed", [2071, 2072])
def test_host_kill9_failover_matches_never_crashed_oracle(
    tmp_path, snapshot_store, seed
):
    """Kill -9 a real shard host mid-stream: the service fails over and
    both its final state and its durable recovery match a never-crashed
    oracle byte-for-byte."""
    stream = build_stream(seed, length=120)
    rng = random.Random(seed)
    kill_at = rng.randrange(len(stream) // 3, 2 * len(stream) // 3)
    config = DurabilityConfig(
        dir=tmp_path / "durable", fsync="never", snapshot_store=snapshot_store
    )
    processes, addresses = [], []
    for _ in range(3):
        process, address = _spawn_host_process()
        processes.append(process)
        addresses.append(address)
    try:
        service = ShardedCoordinationService(
            fresh_db(),
            ServiceConfig(
                executor="remote",
                remote_shards=tuple(addresses),
                durability=config,
            ),
        )
        try:
            victim = rng.randrange(len(processes))
            for index, op in enumerate(stream):
                if index == kill_at:
                    processes[victim].kill()
                    processes[victim].wait(timeout=30)
                apply_op(service, op)
            assert victim not in service.live_shards
            assert len(service.live_shards) == 2
            live = observables(service)
        finally:
            service.close()
    finally:
        for process in processes:
            process.kill()
            process.wait(timeout=30)

    assert live == oracle_observables(stream)

    # Durable recovery from the same directory (fresh thread-executor
    # service) reconstructs the identical state — the failover left no
    # holes in the journal.
    recovered = ShardedCoordinationService(
        fresh_db(), ServiceConfig(shards=2, durability=config)
    )
    try:
        assert not recovered.recovered.empty
        assert observables(recovered) == live
    finally:
        recovered.close()
