"""Concurrent shard executor: equivalence, fuzz, and deadlock regression.

The headline claim of the worker mode is *byte-identical semantics*:
``ShardedCoordinationService(workers=N)`` must produce the same
coordinating sets — members and assignments — as a single
:class:`CoordinationEngine` fed the same linearized stream.  This suite
asserts that three ways:

* deterministic streams on the partner and flights workloads, driven
  blocking (the acceptance-criterion check);
* a multi-threaded fuzz of interleaved submit / submit_nowait /
  retract / insert / flush streams, replayed after quiescence from the
  service's linearization journal into a single-engine oracle;

both run under **both storage backends** (the shared locked store and
the per-shard replicated store with versioned invalidation — see
``repro.db.backend``); plus
* targeted regressions — an ``on_resolved`` callback that re-enters
  ``submit`` (must not deadlock a shard), handle ``wait``, least-loaded
  placement, the idle-component rebalancer, and the engine's
  single-owner assertion.
"""

import random
import threading
from collections import Counter

import pytest

from repro.core import (
    CoordinationEngine,
    QueryState,
    ShardedCoordinationService,
)
from repro.errors import ConcurrencyError, PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query
from repro.workloads.flights import user_name, worst_case_database

from service_testing import (
    DB_SIZE,
    assert_invariants,
    chosen_bytes,
    flight_query,
    partner_stream,
    replay_into_oracle,
    run_equivalent_streams,
)

DRAIN_TIMEOUT = 60.0


# ---------------------------------------------------------------------------
# Blocking equivalence: workers=N against the single-engine oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["shared", "replicated"])
@pytest.mark.parametrize("seed", range(3))
def test_partner_workload_equivalence_with_workers(seed, backend):
    rng = random.Random(1000 + seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with ShardedCoordinationService(db, workers=4, backend=backend) as service:
        run_equivalent_streams(service, engine, partner_stream(rng, 70))
        assert service.drain(timeout=DRAIN_TIMEOUT)


@pytest.mark.parametrize("backend", ["shared", "replicated"])
@pytest.mark.parametrize("seed", range(2))
def test_flights_workload_equivalence_with_workers(seed, backend):
    rng = random.Random(2000 + seed)
    users = 24
    db = worst_case_database(num_flights=20, num_users=users)
    engine = CoordinationEngine(
        worst_case_database(num_flights=20, num_users=users)
    )
    events = []
    for _ in range(60):
        if rng.random() < 0.2:
            events.append(("retract", rng.randrange(1 << 30)))
        else:
            index = rng.randrange(users)
            partners = rng.sample(
                [i for i in range(users) if i != index],
                k=rng.choice((0, 1, 1, 2)),
            )
            events.append(
                ("submit",
                 flight_query(user_name(index), [user_name(p) for p in partners]))
            )
    with ShardedCoordinationService(db, workers=4, backend=backend) as service:
        run_equivalent_streams(service, engine, events)
        assert service.drain(timeout=DRAIN_TIMEOUT)


def test_submit_many_equivalence_with_workers():
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    batch = [
        partner_query(member_name(1), [member_name(2)]),
        partner_query(member_name(2), [member_name(1)]),
        partner_query(member_name(3), [member_name(35)]),  # waits
        partner_query(member_name(3), []),  # duplicate in batch: rejected
        partner_query(member_name(4), []),
    ]
    with ShardedCoordinationService(db, workers=3) as service:
        service_handles = service.submit_many(batch)
        engine_handles = engine.submit_many(batch)
        for ours, theirs in zip(service_handles, engine_handles):
            assert ours.state is theirs.state
            assert ours.satisfied == theirs.satisfied
            assert chosen_bytes(ours.result) == chosen_bytes(theirs.result)
        assert set(service.pending()) == set(engine.pending())
        assert_invariants(service)


# ---------------------------------------------------------------------------
# Journal-replay fuzz: interleaved multi-threaded streams vs the oracle
# ---------------------------------------------------------------------------
def _fuzz_client(service, thread_index, ops, errors):
    """One client thread's deterministic op stream (timing is not)."""
    rng = random.Random(9000 + thread_index)
    base = 200 * thread_index
    mine = [member_name(base + i) for i in range(18)]
    others = [
        member_name(200 * t + i)
        for t in range(3)
        if t != thread_index
        for i in range(18)
    ]
    submitted = []
    try:
        for _ in range(ops):
            roll = rng.random()
            try:
                if roll < 0.40:
                    name = rng.choice(mine)
                    partners = rng.sample(mine + others, k=rng.choice((0, 1, 1, 2)))
                    service.submit(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.60:
                    name = rng.choice(mine)
                    partners = rng.sample(mine, k=rng.choice((0, 1)))
                    service.submit_nowait(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.75 and submitted:
                    service.retract(rng.choice(submitted))
                elif roll < 0.85:
                    # Give a previously row-less user a member row, so a
                    # later flush can coordinate its stalled component.
                    name = rng.choice(mine + others)
                    service.insert(
                        "Members", (name, "region-f", "interest-f", thread_index)
                    )
                elif roll < 0.93:
                    service.flush_drain()
                else:
                    service.drain(timeout=DRAIN_TIMEOUT)
            except PreconditionError:
                pass  # journaled; the oracle replay must raise identically
    except BaseException as error:  # noqa: BLE001 - reported by the test body
        errors.append(error)


@pytest.mark.parametrize("backend", ["shared", "replicated"])
def test_multithreaded_fuzz_matches_single_engine_oracle(backend):
    # Users 0..599 span the three clients' namespaces; most rows exist
    # up front (members_database covers 0..DB_SIZE-1), the rest arrive
    # via service.insert mid-stream.
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, workers=3, backend=backend)
    service.journal = []
    resolutions = Counter()

    @service.on_resolved
    def _collect(handle):
        resolutions[
            (handle.query, handle.state.value, tuple(handle.satisfied_with))
        ] += 1

    errors = []
    threads = [
        threading.Thread(
            target=_fuzz_client, args=(service, t, 60, errors), daemon=True
        )
        for t in range(3)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "fuzz client hung"
        assert not errors, errors
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert_invariants(service)

        journal = list(service.journal)
        service_raises = [
            entry[-1] for entry in journal if entry[0] in ("submit", "retract")
        ]
        oracle, oracle_resolutions, raise_log = replay_into_oracle(
            journal, members_database(size=DB_SIZE, seed=2012)
        )
        # Replay the journal's inserts were applied to the oracle's own
        # db copy; the two databases must agree.
        assert db.sizes() == oracle.db.sizes()
        oracle_raises = [
            flag
            for entry, flag in zip(journal, raise_log)
            if entry[0] in ("submit", "retract")
        ]
        assert service_raises == oracle_raises
        assert set(service.pending()) == set(oracle.pending())
        assert resolutions == oracle_resolutions
        for entry in journal:
            if entry[0] == "submit":
                name = entry[1].name
                assert service.status(name) == oracle.status(name)
    finally:
        service.close()


@pytest.mark.parametrize("backend", ["shared", "replicated"])
def test_nowait_burst_matches_oracle(backend):
    db = members_database(size=DB_SIZE, seed=2012)
    oracle = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    rng = random.Random(7)
    queries = []
    for i in range(40):
        name = member_name(i % 25)
        partners = [member_name(p) for p in rng.sample(range(25), k=rng.choice((0, 1, 2)))]
        queries.append(partner_query(name, partners))
    with ShardedCoordinationService(db, workers=4, backend=backend) as service:
        service.journal = []
        for query in queries:
            try:
                service.submit_nowait(query)
            except PreconditionError:
                pass
        assert service.drain(timeout=DRAIN_TIMEOUT)
        journal = list(service.journal)
        oracle_engine, _, raise_log = replay_into_oracle(
            journal, members_database(size=DB_SIZE, seed=2012)
        )
        assert [e[-1] for e in journal] == raise_log
        assert set(service.pending()) == set(oracle_engine.pending())
        assert_invariants(service)


# ---------------------------------------------------------------------------
# Deadlock regression: callbacks re-entering the service
# ---------------------------------------------------------------------------
def test_on_resolved_callback_reenters_submit_without_deadlock():
    db = members_database(size=DB_SIZE, seed=2012)
    done = threading.Event()
    reentrant = []
    with ShardedCoordinationService(db, workers=2) as service:
        handle = service.submit(
            partner_query(member_name(0), [member_name(100)])
        )

        def reenter(resolved):
            # Runs on the dispatcher thread; a worker- or router-fired
            # callback would deadlock here (the router waits on workers,
            # never on the dispatcher).
            reentrant.append(
                service.submit(partner_query(member_name(5), [member_name(101)]))
            )
            done.set()

        handle.on_resolved(reenter)
        service.retract(member_name(0))
        assert done.wait(timeout=30), "re-entrant callback deadlocked"
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert reentrant[0].is_pending
        assert service.status(member_name(5)) is QueryState.PENDING


def test_service_level_callback_reenters_retract_without_deadlock():
    db = members_database(size=DB_SIZE, seed=2012)
    done = threading.Event()
    with ShardedCoordinationService(db, workers=2) as service:
        service.submit(partner_query(member_name(1), [member_name(100)]))

        @service.on_resolved
        def _chain(handle):
            if handle.query == member_name(0) and not done.is_set():
                try:
                    service.retract(member_name(1))
                finally:
                    done.set()

        service.submit(partner_query(member_name(0), [member_name(0)]))
        assert done.wait(timeout=30), "service-level callback deadlocked"
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert service.status(member_name(1)) is QueryState.RETRACTED


# ---------------------------------------------------------------------------
# QueryHandle thread-safety
# ---------------------------------------------------------------------------
def test_handle_wait_blocks_until_resolution():
    db = members_database(size=DB_SIZE, seed=2012)
    with ShardedCoordinationService(db, workers=2) as service:
        waiting = service.submit_nowait(
            partner_query(member_name(0), [member_name(100)])
        )
        assert waiting.wait(timeout=0.05) is False  # evaluated, still pending
        # A mutually coordinating pair resolves from a worker thread.
        a = service.submit_nowait(partner_query(member_name(1), [member_name(2)]))
        service.submit_nowait(partner_query(member_name(2), [member_name(1)]))
        assert a.wait(timeout=30)
        assert a.state is QueryState.SATISFIED
        assert waiting.wait(timeout=0.05) is False
        service.retract(member_name(0))
        assert waiting.wait(timeout=30)
        assert waiting.state is QueryState.RETRACTED


# ---------------------------------------------------------------------------
# Placement and rebalancing satellites
# ---------------------------------------------------------------------------
def test_least_loaded_placement_is_deterministic_and_even():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=3)
    for i in range(9):
        service.submit(partner_query(member_name(i), [member_name(100 + i)]))
    assert service.shard_pending_counts() == (3, 3, 3)
    # Edge-free arrivals fill shards round-robin by load, ties by index.
    assert [service.shard_of(member_name(i)) for i in range(6)] == [
        0, 1, 2, 0, 1, 2,
    ]


def test_rebalance_moves_idle_components_hot_to_cold():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=2)
    # Six waiting singletons spread 3/3, then retract all of shard 1's.
    for i in range(6):
        service.submit(partner_query(member_name(i), [member_name(100 + i)]))
    for i in range(6):
        if service.shard_of(member_name(i)) == 1:
            service.retract(member_name(i))
    assert service.shard_pending_counts() == (3, 0)
    handles = {
        name: service.handle(name) for name in service.pending()
    }
    moved = service.rebalance()
    assert moved >= 1
    assert service.rebalances == moved
    counts = service.shard_pending_counts()
    assert max(counts) - min(counts) <= 1
    assert_invariants(service)
    # Handles and callbacks survive the relocation (identity preserved).
    for name, handle in handles.items():
        assert service.handle(name) is handle
        assert handle.is_pending


def test_opportunistic_rebalance_triggers_between_commands():
    db = members_database(size=200, seed=2012)
    service = ShardedCoordinationService(db, shards=2)
    service.REBALANCE_INTERVAL = 8  # shrink the cadence for the test
    # Skew the shards: park waiting singletons, retract shard 1's share,
    # then keep submitting/retracting a ping-pong pair to tick the
    # opportunistic counter without evening the load by placement.
    for i in range(10):
        service.submit(partner_query(member_name(i), [member_name(300 + i)]))
    for i in range(10):
        if service.shard_of(member_name(i)) == 1:
            service.retract(member_name(i))
    assert service.shard_pending_counts() == (5, 0)
    for k in range(service.REBALANCE_INTERVAL + 1):
        name = member_name(50 + (k % 2))
        service.submit(partner_query(name, [member_name(400)]))
        service.retract(name)
    assert service.rebalances >= 1
    counts = service.shard_pending_counts()
    assert max(counts) - min(counts) <= 1
    assert_invariants(service)


def test_rebalance_skips_busy_components():
    # Serial-mode guard of the idle rule is vacuous; exercise the busy
    # bookkeeping directly: mark a component busy and verify rebalance
    # refuses to move it.
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=2)
    for i in range(4):
        service.submit(partner_query(member_name(i), [member_name(100 + i)]))
    assert service.shard_pending_counts() == (2, 2)
    for i in range(4):  # empty shard 1: loads (2, 0)
        if service.shard_of(member_name(i)) == 1:
            service.retract(member_name(i))
    assert service.shard_pending_counts() == (2, 0)
    with service._tables:
        service._busy[0].update(service._engines[0].pending())
    try:
        assert service.rebalance() == 0
    finally:
        with service._tables:
            service._busy[0].clear()
    assert service.rebalance() >= 1


# ---------------------------------------------------------------------------
# Engine single-owner discipline and lifecycle misuse
# ---------------------------------------------------------------------------
def test_engine_asserts_single_owner_access():
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    holding = threading.Event()
    release = threading.Event()

    def hold():
        with engine.lock:
            holding.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=hold, daemon=True)
    thread.start()
    assert holding.wait(timeout=30)
    try:
        with pytest.raises(ConcurrencyError):
            engine.submit(partner_query(member_name(0), []))
    finally:
        release.set()
        thread.join(timeout=30)
    # With the lock free again the engine accepts work.
    engine.submit(partner_query(member_name(0), [member_name(100)]))


def test_drain_and_close_from_callback_raise_instead_of_hanging():
    db = members_database(size=DB_SIZE, seed=2012)
    outcomes = []
    done = threading.Event()
    with ShardedCoordinationService(db, workers=2) as service:
        handle = service.submit(
            partner_query(member_name(0), [member_name(100)])
        )

        def misuse(resolved):
            for operation in (service.drain, service.close):
                try:
                    operation()
                except ConcurrencyError:
                    outcomes.append("raised")
                else:  # pragma: no cover - would be the hang regression
                    outcomes.append("returned")
            done.set()

        handle.on_resolved(misuse)
        service.retract(member_name(0))
        assert done.wait(timeout=30), "callback drain/close hung"
        assert outcomes == ["raised", "raised"]
        assert service.drain(timeout=DRAIN_TIMEOUT)  # dispatcher still alive


def test_partially_consumed_solutions_iterator_does_not_block_writes():
    # Regression: a lazily-consumed (or abandoned) solutions() iterator
    # must not hold the database read lock across yields — the classic
    # iterate-a-little-then-insert pattern stays legal on one thread.
    from repro.db import ConjunctiveQuery
    from repro.logic import Atom, Variable

    db = members_database(size=10, seed=2012)
    query = ConjunctiveQuery(
        (Atom("Members", [Variable("u"), Variable("r"), Variable("i"),
                          Variable("k")]),)
    )
    iterator = db.solutions(query)
    assert next(iterator) is not None
    assert db.insert("Members", ("straggler", "NA", "games", 1))  # no hang
    assert sum(1 for _ in iterator) >= 9  # iterator still valid


def test_closed_service_rejects_operations():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, workers=2)
    service.close()
    service.close()  # idempotent
    with pytest.raises(ConcurrencyError):
        service.submit(partner_query(member_name(0), []))


@pytest.mark.parametrize("backend", ["shared", "replicated"])
def test_insert_barrier_orders_writes_after_admitted_evaluations(backend):
    # A nowait submit whose body row is missing stays pending even
    # though the row arrives "immediately" after: the insert barriers
    # behind the already-admitted evaluation, exactly like the serial
    # order submit-then-insert.  A flush then completes it.  Under the
    # replicated backend the insert additionally invalidates every
    # shard replica, so the flush evaluates against the new row.
    absent = member_name(1000)
    db = members_database(size=DB_SIZE, seed=2012)
    oracle = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with ShardedCoordinationService(db, workers=2, backend=backend) as service:
        query = partner_query(absent, [absent])
        service.submit_nowait(query)
        oracle.submit(query)
        service.insert("Members", (absent, "r", "i", 1))
        oracle.db.insert("Members", (absent, "r", "i", 1))
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert set(service.pending()) == set(oracle.pending()) == {absent}
        service_results = service.flush()
        oracle_result = oracle.flush()
        assert chosen_bytes(oracle_result) in [
            chosen_bytes(result) for result in service_results
        ]
        assert set(service.pending()) == set(oracle.pending()) == set()
