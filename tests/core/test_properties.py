"""Unit tests for safety, uniqueness, and single-connectedness."""

from repro.core import (
    CoordinationGraph,
    is_safe,
    is_safe_and_unique,
    is_single_connected,
    is_unique,
    parse_queries,
    postcondition_fanout,
    safety_report,
)
from repro.workloads import vacation_queries


class TestSafety:
    def test_vacation_example_is_safe(self):
        assert is_safe(vacation_queries())

    def test_band_example_1_coldplay_alone_safe(self):
        # Example 1: band members flying together, naming each other.
        queries = parse_queries(
            """
            chris: {R(f1, Guy)} R(x, Chris) :- Fl(x);
            guy:   {R(f2, Chris)} R(y, Guy) :- Fl(y);
            """
        )
        assert is_safe(queries)

    def test_band_example_1_gwyneth_breaks_uniqueness_not_safety(self):
        # Gwyneth also wants to fly with Chris: still safe (each post
        # unifies with exactly one head) but no longer unique.
        queries = parse_queries(
            """
            chris:   {R(f1, Guy)} R(x, Chris) :- Fl(x);
            guy:     {R(f2, Chris)} R(y, Guy) :- Fl(y);
            gwyneth: {R(f3, Chris)} R(z, Gwyneth) :- Fl(z);
            """
        )
        graph = CoordinationGraph.build(queries)
        assert safety_report(graph).is_safe
        assert not is_unique(graph)

    def test_unsafe_when_post_matches_two_heads(self):
        # A variable-partner postcondition matches both other heads.
        queries = parse_queries(
            """
            a: {R(y, f)} R(x, A) :- Fr(A, f), T(x), T(y);
            b: {} R(u, B) :- T(u);
            c: {} R(v, C) :- T(v);
            """
        )
        graph = CoordinationGraph.build(queries)
        report = safety_report(graph)
        assert not report.is_safe
        assert report.unsafe_queries() == ("a",)
        assert report.violations[0][2] >= 2  # at least two matching heads

    def test_fanout_counts(self):
        queries = parse_queries(
            """
            a: {P(x)} S(x) :- T(x);
            b: {} P(y) :- T(y);
            """
        )
        graph = CoordinationGraph.build(queries)
        fanout = postcondition_fanout(graph)
        assert fanout[("a", 0)] == 1

    def test_zero_fanout_is_safe_but_unsatisfiable(self):
        queries = parse_queries("a: {Nope(1)} S(x) :- T(x)")
        graph = CoordinationGraph.build(queries)
        assert safety_report(graph).is_safe
        assert postcondition_fanout(graph)[("a", 0)] == 0


class TestUniqueness:
    def test_vacation_example_not_unique(self):
        graph = CoordinationGraph.build(vacation_queries())
        assert not is_unique(graph)

    def test_two_cycle_is_unique(self):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- T(x);
            b: {Q(y)} P(y) :- T(y);
            """
        )
        graph = CoordinationGraph.build(queries)
        assert is_unique(graph)
        assert is_safe_and_unique(queries)

    def test_single_query_trivially_unique(self):
        queries = parse_queries("a: {} P(x) :- T(x)")
        assert is_unique(CoordinationGraph.build(queries))

    def test_list_structure_not_unique(self):
        queries = parse_queries(
            """
            a: {P2(x)} P1(x) :- T(x);
            b: {} P2(y) :- T(y);
            """
        )
        assert not is_unique(CoordinationGraph.build(queries))


class TestSingleConnectedness:
    def test_chain_is_single_connected(self):
        queries = parse_queries(
            """
            a: {P2(x)} P1(x) :- T(x);
            b: {P3(y)} P2(y) :- T(y);
            c: {} P3(z) :- T(z);
            """
        )
        assert is_single_connected(CoordinationGraph.build(queries))

    def test_two_postconditions_disqualify(self):
        queries = parse_queries(
            """
            a: {P2(x), P3(x)} P1(x) :- T(x);
            b: {} P2(y) :- T(y);
            c: {} P3(z) :- T(z);
            """
        )
        assert not is_single_connected(CoordinationGraph.build(queries))

    def test_diamond_paths_disqualify(self):
        # a's single postcondition reaches d via b and via c.
        queries = parse_queries(
            """
            a: {M(x)} A(x) :- T(x);
            b: {D(y)} M(y) :- T(y);
            c: {D(z)} M(z) :- T(z);
            d: {} D(w) :- T(w);
            """
        )
        graph = CoordinationGraph.build(queries)
        # a -> b and a -> c (unsafe fanout), b -> d, c -> d: two simple
        # paths a..d.
        assert not is_single_connected(graph)

    def test_fanout_to_disjoint_targets_is_single_connected(self):
        queries = parse_queries(
            """
            a: {M(x)} A(x) :- T(x);
            b: {} M(y) :- T(y);
            c: {} M(z) :- T(z);
            """
        )
        assert is_single_connected(CoordinationGraph.build(queries))
