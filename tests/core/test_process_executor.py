"""Process-based shard executor: equivalence, fuzz, crash, and replay.

The headline claim mirrors the worker-thread executor's:
``ShardedCoordinationService(..., executor="process")`` — each shard's
engine in a worker *process* with a private replica synced over the
wire — must produce byte-identical outcomes to the serial service and
the single engine.  Asserted by:

* deterministic equivalence streams on the partner and flights
  workloads (submits, retracts, spanning arrivals → cross-process
  migration), serial and with workers;
* the multi-threaded journal-replay fuzz of interleaved submit /
  submit_nowait / retract / insert / flush_drain streams, replayed
  from the service's linearized journal into a single-engine oracle;
* a crash-replay test: after a killed worker, the wire-encoded journal
  reconstructs identical state in a restarted service;

plus crash regressions (a dead worker process surfaces
``ConcurrencyError`` and rejects its handles instead of hanging
``drain``) and a teardown fixture asserting no worker process leaks.
"""

import multiprocessing
import random
import threading
import time
from collections import Counter

import pytest

from repro.core import (
    CoordinationEngine,
    QueryState,
    ShardedCoordinationService,
)
from repro.db import wire
from repro.errors import ConcurrencyError, PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query
from repro.workloads.flights import user_name, worst_case_database

from service_testing import (
    DB_SIZE,
    assert_invariants,
    chosen_bytes,
    flight_query,
    partner_stream,
    replay_into_oracle,
    run_equivalent_streams,
)

DRAIN_TIMEOUT = 60.0


@pytest.fixture(autouse=True)
def no_leaked_worker_processes():
    """Every test must reap its worker processes (CI asserts this too)."""
    yield
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = multiprocessing.active_children()
    assert not leaked, f"leaked worker processes: {leaked}"


def process_service(db, **kwargs) -> ShardedCoordinationService:
    return ShardedCoordinationService(db, executor="process", **kwargs)


# ---------------------------------------------------------------------------
# Blocking equivalence against the single-engine oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(2))
def test_partner_workload_equivalence_with_process_workers(seed):
    rng = random.Random(1000 + seed)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with process_service(db, workers=3) as service:
        run_equivalent_streams(service, engine, partner_stream(rng, 60))
        assert service.drain(timeout=DRAIN_TIMEOUT)


def test_partner_workload_equivalence_with_serial_process_shards():
    # workers=None drives the process shards from the calling thread —
    # the IPC analogue of the paper-faithful serial loop.
    rng = random.Random(77)
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    with process_service(db, shards=2) as service:
        run_equivalent_streams(service, engine, partner_stream(rng, 40))


def test_flights_workload_equivalence_with_process_workers():
    rng = random.Random(2000)
    users = 20
    db = worst_case_database(num_flights=16, num_users=users)
    engine = CoordinationEngine(
        worst_case_database(num_flights=16, num_users=users)
    )
    events = []
    for _ in range(45):
        if rng.random() < 0.2:
            events.append(("retract", rng.randrange(1 << 30)))
        else:
            index = rng.randrange(users)
            partners = rng.sample(
                [i for i in range(users) if i != index],
                k=rng.choice((0, 1, 1, 2)),
            )
            events.append(
                ("submit",
                 flight_query(user_name(index), [user_name(p) for p in partners]))
            )
    with process_service(db, workers=3) as service:
        run_equivalent_streams(service, engine, events)
        assert service.drain(timeout=DRAIN_TIMEOUT)


def test_submit_many_equivalence_with_process_workers():
    db = members_database(size=DB_SIZE, seed=2012)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    batch = [
        partner_query(member_name(1), [member_name(2)]),
        partner_query(member_name(2), [member_name(1)]),
        partner_query(member_name(3), [member_name(35)]),  # waits
        partner_query(member_name(3), []),  # duplicate in batch: rejected
        partner_query(member_name(4), []),
    ]
    with process_service(db, workers=3) as service:
        service_handles = service.submit_many(batch)
        engine_handles = engine.submit_many(batch)
        for ours, theirs in zip(service_handles, engine_handles):
            assert ours.state is theirs.state
            assert ours.satisfied == theirs.satisfied
            assert chosen_bytes(ours.result) == chosen_bytes(theirs.result)
        assert set(service.pending()) == set(engine.pending())
        assert_invariants(service)


@pytest.mark.parametrize("workers", [None, 2])
def test_insert_barrier_syncs_process_replicas(workers):
    # The replica-sync path: a row inserted after admission must reach
    # the worker processes' replicas before the flush that needs it.
    absent = member_name(1000)
    db = members_database(size=DB_SIZE, seed=2012)
    oracle = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    kwargs = {"workers": workers} if workers else {"shards": 2}
    with process_service(db, **kwargs) as service:
        query = partner_query(absent, [absent])
        (service.submit_nowait if workers else service.submit)(query)
        oracle.submit(query)
        service.insert("Members", (absent, "r", "i", 1))
        oracle.db.insert("Members", (absent, "r", "i", 1))
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert set(service.pending()) == set(oracle.pending()) == {absent}
        service_results = service.flush()
        oracle_result = oracle.flush()
        assert chosen_bytes(oracle_result) in [
            chosen_bytes(result) for result in service_results
        ]
        assert set(service.pending()) == set(oracle.pending()) == set()


# ---------------------------------------------------------------------------
# Journal-replay fuzz: interleaved multi-threaded streams vs the oracle
# ---------------------------------------------------------------------------
def _fuzz_client(service, thread_index, ops, errors):
    rng = random.Random(9000 + thread_index)
    base = 200 * thread_index
    mine = [member_name(base + i) for i in range(15)]
    others = [
        member_name(200 * t + i)
        for t in range(3)
        if t != thread_index
        for i in range(15)
    ]
    submitted = []
    try:
        for _ in range(ops):
            roll = rng.random()
            try:
                if roll < 0.40:
                    name = rng.choice(mine)
                    partners = rng.sample(mine + others, k=rng.choice((0, 1, 1, 2)))
                    service.submit(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.60:
                    name = rng.choice(mine)
                    partners = rng.sample(mine, k=rng.choice((0, 1)))
                    service.submit_nowait(partner_query(name, partners))
                    submitted.append(name)
                elif roll < 0.75 and submitted:
                    service.retract(rng.choice(submitted))
                elif roll < 0.85:
                    name = rng.choice(mine + others)
                    service.insert(
                        "Members", (name, "region-f", "interest-f", thread_index)
                    )
                elif roll < 0.93:
                    service.flush_drain()
                else:
                    service.drain(timeout=DRAIN_TIMEOUT)
            except PreconditionError:
                pass  # journaled; the oracle replay must raise identically
    except BaseException as error:  # noqa: BLE001 - reported by the test body
        errors.append(error)


def test_multithreaded_fuzz_matches_single_engine_oracle():
    db = members_database(size=DB_SIZE, seed=2012)
    service = process_service(db, workers=3)
    service.journal = []
    resolutions = Counter()

    @service.on_resolved
    def _collect(handle):
        resolutions[
            (handle.query, handle.state.value, tuple(handle.satisfied_with))
        ] += 1

    errors = []
    threads = [
        threading.Thread(
            target=_fuzz_client, args=(service, t, 40, errors), daemon=True
        )
        for t in range(3)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "fuzz client hung"
        assert not errors, errors
        assert service.drain(timeout=DRAIN_TIMEOUT)
        assert_invariants(service)

        journal = list(service.journal)
        service_raises = [
            entry[-1] for entry in journal if entry[0] in ("submit", "retract")
        ]
        oracle, oracle_resolutions, raise_log = replay_into_oracle(
            journal, members_database(size=DB_SIZE, seed=2012)
        )
        assert db.sizes() == oracle.db.sizes()
        oracle_raises = [
            flag
            for entry, flag in zip(journal, raise_log)
            if entry[0] in ("submit", "retract")
        ]
        assert service_raises == oracle_raises
        assert set(service.pending()) == set(oracle.pending())
        assert resolutions == oracle_resolutions
        for entry in journal:
            if entry[0] == "submit":
                name = entry[1].name
                assert service.status(name) == oracle.status(name)
    finally:
        service.close()


def test_nowait_burst_matches_oracle():
    db = members_database(size=DB_SIZE, seed=2012)
    rng = random.Random(7)
    queries = []
    for i in range(30):
        name = member_name(i % 20)
        partners = [
            member_name(p) for p in rng.sample(range(20), k=rng.choice((0, 1, 2)))
        ]
        queries.append(partner_query(name, partners))
    with process_service(db, workers=3) as service:
        service.journal = []
        for query in queries:
            try:
                service.submit_nowait(query)
            except PreconditionError:
                pass
        assert service.drain(timeout=DRAIN_TIMEOUT)
        journal = list(service.journal)
        oracle_engine, _, raise_log = replay_into_oracle(
            journal, members_database(size=DB_SIZE, seed=2012)
        )
        assert [e[-1] for e in journal] == raise_log
        assert set(service.pending()) == set(oracle_engine.pending())
        assert_invariants(service)


# ---------------------------------------------------------------------------
# Worker-crash regressions (satellite: no hang, loud handles, safe close)
# ---------------------------------------------------------------------------
def _kill_shard(service, index) -> None:
    worker = service._engines[index]._process
    worker.kill()
    worker.join(timeout=30)
    assert not worker.is_alive()


def test_dead_worker_rejects_handles_and_raises_instead_of_hanging():
    db = members_database(size=DB_SIZE, seed=2012)
    service = process_service(db, workers=2)
    try:
        handles = [
            service.submit(partner_query(member_name(i), [member_name(500 + i)]))
            for i in range(4)
        ]
        dead_shard = service.shard_of(member_name(0))
        on_dead = [h for h in handles if service.shard_of(h.query) == dead_shard]
        survivors = [h for h in handles if h not in on_dead]
        _kill_shard(service, dead_shard)

        # The next routed operation touches every shard's probe and
        # surfaces the death as ConcurrencyError (never a hang).
        with pytest.raises(ConcurrencyError, match="died"):
            service.submit(partner_query(member_name(50), []))

        # The dead shard's handles resolved loudly; wait() returns.
        for handle in on_dead:
            assert handle.wait(timeout=10)
            assert handle.state is QueryState.REJECTED
            assert "died" in handle.reason
        for handle in survivors:
            assert handle.is_pending
        # Routing tables dropped the dead shard's queries.
        assert set(service.pending()) == {h.query for h in survivors}

        # retract of a dead query reports it gone, like the serial stream.
        with pytest.raises(PreconditionError):
            service.retract(on_dead[0].query)
        # drain terminates (no outstanding evaluations can survive).
        assert service.drain(timeout=DRAIN_TIMEOUT)
    finally:
        service.close(timeout=30)
        service.close(timeout=30)  # idempotent, also after a crash


def test_dead_worker_fails_inflight_blocking_submit():
    db = members_database(size=DB_SIZE, seed=2012)
    service = process_service(db, workers=2)
    try:
        service.submit(partner_query(member_name(0), [member_name(500)]))
        # Kill both workers: whichever shard the next arrival routes to,
        # the probe or evaluation hits a dead process.
        _kill_shard(service, 0)
        _kill_shard(service, 1)
        with pytest.raises(ConcurrencyError, match="died"):
            service.submit(partner_query(member_name(1), []))
        assert service.drain(timeout=DRAIN_TIMEOUT)
    finally:
        service.close(timeout=30)


# ---------------------------------------------------------------------------
# Crash-replay: the wire-encoded journal reconstructs state on restart
# ---------------------------------------------------------------------------
def test_journal_reconstructs_state_after_worker_restart():
    db = members_database(size=DB_SIZE, seed=2012)
    service = process_service(db, workers=2)
    service.journal = []
    extra_row = (member_name(700), "r", "i", 1)
    try:
        for i in range(6):
            service.submit(
                partner_query(member_name(i), [member_name(600 + i)])
            )
        service.retract(member_name(2))
        service.insert("Members", extra_row)
        service.flush_drain()
        _kill_shard(service, 0)
        with pytest.raises(ConcurrencyError, match="died"):
            service.submit(partner_query(member_name(40), []))
        journal = list(service.journal)
    finally:
        service.close(timeout=30)

    # Ship the journal as bytes — the crash-replay format — and restart.
    decoded = wire.decode_journal(wire.loads(wire.dumps(wire.encode_journal(journal))))
    assert decoded == journal
    oracle, _, _ = replay_into_oracle(
        decoded, members_database(size=DB_SIZE, seed=2012)
    )
    restarted = process_service(
        members_database(size=DB_SIZE, seed=2012), workers=2
    )
    try:
        for entry in decoded:
            kind = entry[0]
            try:
                if kind == "submit":
                    restarted.submit(entry[1])
                elif kind == "submit_many":
                    restarted.submit_many(entry[1])
                elif kind == "retract":
                    restarted.retract(entry[1])
                elif kind == "insert":
                    restarted.insert(entry[1], entry[2])
                elif kind == "flush_drain":
                    restarted.flush_drain()
            except PreconditionError:
                pass
        assert restarted.drain(timeout=DRAIN_TIMEOUT)
        # The restarted service reaches the oracle's exact state — the
        # killed worker's queries included (its journal survived the
        # crash even though its process did not).
        assert set(restarted.pending()) == set(oracle.pending())
        assert restarted.db.sizes() == oracle.db.sizes()
        assert_invariants(restarted)
    finally:
        restarted.close(timeout=30)


# ---------------------------------------------------------------------------
# Proxy-handle behaviour across the boundary
# ---------------------------------------------------------------------------
def test_callbacks_and_wait_work_on_proxy_handles():
    db = members_database(size=DB_SIZE, seed=2012)
    fired = []
    done = threading.Event()
    with process_service(db, workers=2) as service:
        waiting = service.submit_nowait(
            partner_query(member_name(0), [member_name(100)])
        )
        waiting.on_resolved(lambda handle: (fired.append(handle), done.set()))
        a = service.submit_nowait(partner_query(member_name(1), [member_name(2)]))
        service.submit_nowait(partner_query(member_name(2), [member_name(1)]))
        assert a.wait(timeout=30)
        assert a.state is QueryState.SATISFIED
        assert set(a.satisfied_with) == {member_name(1), member_name(2)}
        service.retract(member_name(0))
        assert done.wait(timeout=30), "proxy-handle callback never fired"
        assert fired[0] is waiting
        assert waiting.state is QueryState.RETRACTED
        assert service.drain(timeout=DRAIN_TIMEOUT)


def test_rebalance_moves_components_between_processes():
    db = members_database(size=DB_SIZE, seed=2012)
    with process_service(db, shards=2) as service:
        for i in range(6):
            service.submit(partner_query(member_name(i), [member_name(100 + i)]))
        for i in range(6):
            if service.shard_of(member_name(i)) == 1:
                service.retract(member_name(i))
        assert service.shard_pending_counts() == (3, 0)
        handles = {name: service.handle(name) for name in service.pending()}
        moved = service.rebalance()
        assert moved >= 1
        counts = service.shard_pending_counts()
        assert max(counts) - min(counts) <= 1
        assert_invariants(service)
        for name, handle in handles.items():
            assert service.handle(name) is handle
            assert handle.is_pending


def test_process_executor_rejects_unserializable_configuration():
    db = members_database(size=DB_SIZE, seed=2012)
    with pytest.raises(PreconditionError):
        ShardedCoordinationService(
            db, executor="process", choose=lambda sets: sets[0]
        )
    from repro.db import SharedBackend

    with pytest.raises(PreconditionError):
        ShardedCoordinationService(
            db, executor="process", backend=SharedBackend(db)
        )
    with pytest.raises(PreconditionError):
        ShardedCoordinationService(db, executor="fiber")
