"""Unit tests for the SCC Coordination Algorithm (Section 4)."""

import pytest

from repro.core import (
    CoordinationGraph,
    containing_query,
    find_coordinating_set,
    parse_queries,
    preprocess,
    scc_coordinate,
    verify_result_set,
)
from repro.db import DatabaseBuilder, unary_boolean_database
from repro.errors import PreconditionError
from repro.workloads import list_workload, members_database, vacation_database, vacation_queries


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("Fl", ["flightId", "destination"], key="flightId")
        .rows("Fl", [(1, "Zurich"), (2, "Paris")])
        .build()
    )


class TestVacationExample:
    """Section 4's walkthrough of the flight–hotel scenario."""

    def test_finds_chris_and_guy(self):
        db = vacation_database()
        queries = vacation_queries()
        result = scc_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"qC", "qG"}
        assert verify_result_set(db, queries, result.chosen).ok

    def test_three_components(self):
        db = vacation_database()
        result = scc_coordinate(db, vacation_queries())
        assert result.stats.scc_count == 3

    def test_flight_and_hotel_agree(self):
        db = vacation_database()
        result = scc_coordinate(db, vacation_queries())
        chosen = result.chosen
        # Chris and Guy share the flight and the hotel.
        assert chosen.value_of("qC", "x1") == chosen.value_of("qG", "y1")
        assert chosen.value_of("qC", "x2") == chosen.value_of("qG", "y2")
        # And they are Paris bookings.
        assert db.contains("F", (chosen.value_of("qG", "y1"), "Paris"))
        assert db.contains("H", (chosen.value_of("qG", "y2"), "Paris"))

    def test_at_most_one_db_query_per_component(self):
        db = vacation_database()
        result = scc_coordinate(db, vacation_queries())
        assert result.stats.db_queries <= result.stats.scc_count


class TestNonUniqueSets:
    def test_dropping_uniqueness_works(self, db):
        # The Gupta baseline rejects this; the SCC algorithm handles it.
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Fl(x, 'Zurich');
            b: {} P(y) :- Fl(y, 'Zurich');
            """
        )
        result = scc_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"a", "b"}

    def test_example_1_gwyneth(self, db):
        queries = parse_queries(
            """
            chris:   {R(y1, Guy)} R(x1, Chris) :- Fl(x1, 'Zurich');
            guy:     {R(y2, Chris)} R(x2, Guy) :- Fl(x2, 'Zurich');
            gwyneth: {R(y3, Chris)} R(x3, Gwyneth) :- Fl(x3, 'Zurich');
            """
        )
        result = scc_coordinate(db, queries)
        assert result.found
        # The largest candidate includes everyone.
        assert result.chosen.member_set() == {"chris", "guy", "gwyneth"}

    def test_candidate_list_matches_paper_shape(self, db):
        # Components graph: (q3+q4) -> (q1+q2) <- (q5+q6): the algorithm
        # records {q1,q2}, {q1..q4}, {q1,q2,q5,q6} but NOT the union.
        queries = parse_queries(
            """
            q1: {P2(a)} P1(a) :- Fl(a, 'Zurich');
            q2: {P1(b)} P2(b) :- Fl(b, 'Zurich');
            q3: {P4(c), P1(c2)} P3(c) :- Fl(c, 'Zurich');
            q4: {P3(d)} P4(d) :- Fl(d, 'Zurich');
            q5: {P6(e), P2(e2)} P5(e) :- Fl(e, 'Zurich');
            q6: {P5(f)} P6(f) :- Fl(f, 'Zurich');
            """
        )
        result = scc_coordinate(db, queries)
        families = {c.member_set() for c in result.candidates}
        assert families == {
            frozenset({"q1", "q2"}),
            frozenset({"q1", "q2", "q3", "q4"}),
            frozenset({"q1", "q2", "q5", "q6"}),
        }
        assert result.chosen.size == 4

    def test_selection_criterion_vip(self, db):
        queries = parse_queries(
            """
            q1: {P2(a)} P1(a) :- Fl(a, 'Zurich');
            q2: {P1(b)} P2(b) :- Fl(b, 'Zurich');
            q3: {P4(c), P1(c2)} P3(c) :- Fl(c, 'Zurich');
            q4: {P3(d)} P4(d) :- Fl(d, 'Zurich');
            q5: {P6(e), P2(e2)} P5(e) :- Fl(e, 'Zurich');
            q6: {P5(f)} P6(f) :- Fl(f, 'Zurich');
            """
        )
        result = scc_coordinate(db, queries, choose=containing_query("q5"))
        assert "q5" in result.chosen

    def test_failure_propagates_to_dependents(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Fl(x, 'Atlantis');
            b: {Q(y)} P(y) :- Fl(y, 'Atlantis');
            c: {P(z)} S(z) :- Fl(z, 'Zurich');
            """
        )
        result = scc_coordinate(db, queries)
        assert not result.found

    def test_independent_components_all_candidates(self, db):
        queries = parse_queries(
            """
            a: {} P(x) :- Fl(x, 'Zurich');
            b: {} Q(y) :- Fl(y, 'Paris');
            """
        )
        result = scc_coordinate(db, queries)
        assert len(result.candidates) == 2
        assert result.chosen.size == 1  # both candidates are singletons


class TestPreprocessing:
    def test_unmatched_postcondition_removed(self, db):
        queries = parse_queries(
            """
            a: {Gone(x)} Q(x) :- Fl(x, 'Zurich');
            b: {} P(y) :- Fl(y, 'Zurich');
            """
        )
        graph = CoordinationGraph.build(queries)
        pre = preprocess(graph)
        assert pre.removed == ("a",)
        result = scc_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"b"}
        assert result.stats.preprocessing_removed == 1

    def test_cascading_removal(self, db):
        queries = parse_queries(
            """
            a: {P(x)} A(x) :- Fl(x, 'Zurich');
            b: {Gone(y)} P(y) :- Fl(y, 'Zurich');
            c: {} C(z) :- Fl(z, 'Zurich');
            """
        )
        graph = CoordinationGraph.build(queries)
        pre = preprocess(graph)
        assert set(pre.removed) == {"a", "b"}
        result = scc_coordinate(db, queries)
        assert result.chosen.member_set() == {"c"}

    def test_cycle_survives_preprocessing(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Fl(x, 'Zurich');
            b: {Q(y)} P(y) :- Fl(y, 'Zurich');
            """
        )
        pre = preprocess(CoordinationGraph.build(queries))
        assert pre.removed == ()

    def test_preprocessing_saves_db_queries(self, db):
        queries = parse_queries(
            """
            a: {Gone(x)} Q(x) :- Fl(x, 'Zurich');
            b: {} P(y) :- Fl(y, 'Zurich');
            """
        )
        with_pre = scc_coordinate(db, queries, run_preprocessing=True)
        without = scc_coordinate(db, queries, run_preprocessing=False)
        assert with_pre.stats.db_queries < without.stats.db_queries or (
            with_pre.stats.db_queries <= without.stats.db_queries
        )
        # Without preprocessing the doomed component still fails safely.
        assert without.found and without.chosen.member_set() == {"b"}


class TestGuarantees:
    def test_safety_required(self, db):
        queries = parse_queries(
            """
            a: {R(y, f)} R(x, A) :- Fl(x, f), Fl(y, f);
            b: {} R(u, B) :- Fl(u, 'Zurich');
            c: {} R(v, C) :- Fl(v, 'Paris');
            """
        )
        with pytest.raises(PreconditionError):
            scc_coordinate(db, queries)

    def test_agrees_with_bruteforce_existence_on_examples(self, db):
        cases = [
            "a: {P(x)} Q(x) :- Fl(x, 'Zurich'); b: {Q(y)} P(y) :- Fl(y, 'Zurich')",
            "a: {P(x)} Q(x) :- Fl(x, 'Zurich'); b: {Q(y)} P(y) :- Fl(y, 'Paris')",
            "a: {P(x)} Q(x) :- Fl(x, 'Rome'); b: {} P(y) :- Fl(y, 'Rome')",
            "a: {} Q(x) :- Fl(x, 'Zurich')",
        ]
        for source in cases:
            queries = parse_queries(source)
            exact = find_coordinating_set(db, queries)
            ours = scc_coordinate(db, queries)
            assert (exact is not None) == ours.found, source

    def test_all_candidates_verify(self):
        db = members_database(200)
        queries = list_workload(12)
        result = scc_coordinate(db, queries)
        for candidate in result.candidates:
            assert verify_result_set(db, queries, candidate).ok

    def test_db_query_bound(self):
        db = members_database(200)
        queries = list_workload(25)
        result = scc_coordinate(db, queries)
        # Paper: at most |Q| database queries.
        assert result.stats.db_queries <= len(queries)
        # List structure: every query is its own SCC -> equality.
        assert result.stats.db_queries == len(queries)

    def test_empty_input(self, db):
        result = scc_coordinate(db, [])
        assert not result.found
        assert result.candidates == []

    def test_unary_theorem2_shape(self):
        """On a Theorem-2 style safe instance, candidates are R(q) sets."""
        db = unary_boolean_database()
        queries = parse_queries(
            """
            val: {} R1(x) :- D(x);
            c0:  {R1(1)} C0(1) :- ∅;
            c1:  {R1(0)} C1(1) :- ∅;
            """
        )
        result = scc_coordinate(db, queries)
        families = {c.member_set() for c in result.candidates}
        # Each clause query's R(q) = itself + val; val alone also works.
        assert families == {
            frozenset({"val"}),
            frozenset({"val", "c0"}),
            frozenset({"val", "c1"}),
        }
        # Maximum over R(q) is size 2 even though {val,c0,c1} is never
        # coordinating anyway (R1 grounded to both 0 and 1 impossible).
        assert result.chosen.size == 2
