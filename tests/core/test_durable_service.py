"""Durable-service recovery: equivalence, edge cases, and kill -9 fuzz.

The contract under test (DESIGN.md §11): a service restarted from a
durability directory is byte-identical — relations, pending pool in
arrival order, per-query lifecycle states — to a service that never
went down, for every backend/executor combination and for crashes at
arbitrary points, including a SIGKILL that tears the final WAL record.
"""

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from durable_testing import (
    apply_op,
    build_stream,
    fresh_db,
    observables,
    oracle_observables,
)

from repro.core.service import ShardedCoordinationService
from repro.db import Database, DurabilityConfig
from repro.errors import ConcurrencyError

CHILD = Path(__file__).resolve().parent / "durable_crash_child.py"

#: Every data-plane combination the service supports.
COMBOS = [
    pytest.param(dict(shards=2), id="serial-shared"),
    pytest.param(dict(workers=2), id="workers-shared"),
    pytest.param(dict(workers=2, backend="replicated"), id="workers-replicated"),
    pytest.param(dict(workers=2, executor="process"), id="workers-process"),
]


def durable(tmp_path, **overrides) -> DurabilityConfig:
    options = dict(dir=tmp_path / "durable", fsync="never")
    options.update(overrides)
    return DurabilityConfig(**options)


def run_prefix(config, stream, count, **service_kwargs):
    """One service life: apply ``stream[:count]``, close, return what
    it observed."""
    service = ShardedCoordinationService(
        fresh_db(), durability=config, **service_kwargs
    )
    try:
        for op in stream[:count]:
            apply_op(service, op)
        return observables(service)
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Recovery equivalence across every backend/executor combination
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("combo", COMBOS)
def test_recovery_matches_oracle_across_combos(tmp_path, combo):
    config = durable(tmp_path, snapshot_every=16)
    stream = build_stream(seed=1207, length=60)
    cut = 50
    first_life = run_prefix(config, stream, cut, **combo)
    assert first_life == oracle_observables(stream[:cut])

    # Second life recovers, must equal the oracle at the cut, then both
    # finish the stream and must agree at the end too.
    service = ShardedCoordinationService(
        fresh_db(), durability=config, **combo
    )
    try:
        assert service.durable.journal_len == cut
        assert observables(service) == oracle_observables(stream[:cut])
        for op in stream[cut:]:
            apply_op(service, op)
        assert observables(service) == oracle_observables(stream)
    finally:
        service.close()


def test_recovery_into_different_combo(tmp_path):
    """A directory written by one data plane recovers into another —
    durability is a layer under placement, not coupled to it."""
    config = durable(tmp_path)
    stream = build_stream(seed=42, length=40)
    serial = run_prefix(config, stream, len(stream), shards=2)
    service = ShardedCoordinationService(
        fresh_db(), durability=config, workers=3, backend="replicated"
    )
    try:
        assert observables(service) == serial
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------
def test_empty_directory_is_a_clean_boot(tmp_path):
    service = ShardedCoordinationService(
        fresh_db(), shards=2, durability=durable(tmp_path)
    )
    try:
        assert service.recovered is not None
        assert service.recovered.empty
        # Construction checkpointed generation 1 so the next crash
        # replays from a snapshot, not from nothing.
        assert service.durable.generation == 1
    finally:
        service.close()


def test_snapshot_with_zero_wal_suffix(tmp_path):
    config = durable(tmp_path)
    stream = build_stream(seed=7, length=30)
    service = ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    )
    for op in stream:
        apply_op(service, op)
    before = observables(service)
    generation = service.checkpoint()
    service.close()

    recovered = ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    )
    try:
        state = recovered.recovered
        assert state.generation == generation
        assert state.records == []  # nothing after the checkpoint
        assert observables(recovered) == before
    finally:
        recovered.close()


def test_torn_final_wal_record_is_discarded(tmp_path):
    config = durable(tmp_path)
    stream = build_stream(seed=13, length=30)
    service = ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    )
    for op in stream:
        apply_op(service, op)
    before = observables(service)
    service.close()
    # Simulate a crash mid-append: garbage after the last full record.
    (wal_path,) = config.dir.glob("wal-*.log")
    with open(wal_path, "ab") as handle:
        handle.write(b"\x00\x00\x00\x30EQ")  # length prefix + partial frame

    recovered = ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    )
    try:
        assert recovered.recovered.torn_record_discarded
        assert observables(recovered) == before
    finally:
        recovered.close()


def test_recovery_into_preseeded_database(tmp_path):
    """The CLI path: the same base database is loaded before the
    service opens the durability directory — set-semantics apply must
    not double rows or desync."""
    config = durable(tmp_path)
    stream = build_stream(seed=3, length=30)
    # Stream seeding already inserted the base rows durably; build a
    # second life whose db was ALSO pre-seeded with the same rows.
    run_prefix(config, stream, len(stream), shards=2)
    preseeded = fresh_db()
    from durable_testing import seed_rows

    preseeded.insert_many("Members", seed_rows())
    service = ShardedCoordinationService(
        preseeded, shards=2, durability=config
    )
    try:
        assert observables(service) == oracle_observables(stream)
    finally:
        service.close()


def test_auto_checkpoint_compacts_the_wal(tmp_path):
    config = durable(tmp_path, snapshot_every=10)
    stream = build_stream(seed=9, length=80)
    service = ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    )
    try:
        for op in stream:
            apply_op(service, op)
        # 110 stream ops with a 10-record interval: the WAL must have
        # rotated many times, and old generations must be gone.
        assert service.durable.generation > 3
        generations = service.durable.snapshots.generations()
        assert generations == [service.durable.generation]
    finally:
        service.close()


def test_closed_durable_service_releases_the_directory(tmp_path):
    config = durable(tmp_path)
    db = fresh_db()
    service = ShardedCoordinationService(db, shards=2, durability=config)
    service.close()
    with pytest.raises(ConcurrencyError):
        service.checkpoint()
    # The database is no longer taxed: writes after close must not
    # reach the closed WAL (the listener was detached).
    db.insert("Members", ("zz", "r", "i", 1))
    # And the directory can be reopened immediately (sqlite/file locks
    # released).
    ShardedCoordinationService(
        fresh_db(), shards=2, durability=config
    ).close()


# ---------------------------------------------------------------------------
# kill -9 crash-recovery fuzz
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("store", ["file", "sqlite"])
@pytest.mark.timeout(300)
def test_kill9_fuzz_recovers_byte_identical(tmp_path, store):
    """SIGKILL a durable service at random points mid-stream; every
    restart must recover byte-identically to a never-crashed oracle at
    the durable prefix (the child asserts that itself, exit code 3),
    and the final surviving life must end byte-identical to an oracle
    fed the whole stream."""
    seed = 20120827
    durable_dir = tmp_path / "durable"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, str(CHILD), str(durable_dir), str(seed), store,
    ]
    rng = random.Random(seed)
    crashes = 0
    for _ in range(4):
        child = subprocess.Popen(
            command + ["2"],  # 2ms pacing: kills land mid-stream
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            # Wait for recovery to finish (and be oracle-checked), then
            # kill at a random point of the remaining stream.
            started = child.stdout.readline()
            assert started.startswith("START"), (
                started, child.stderr.read()
            )
            time.sleep(rng.uniform(0.02, 0.35))
            child.kill()  # SIGKILL — no atexit, no flush, no mercy
        finally:
            child.wait(timeout=60)
        assert child.returncode != 3, child.stderr.read()
        crashes += 1
    # Final life: no pacing, run to completion.
    final = subprocess.run(
        command + ["0"],
        capture_output=True,
        env=env,
        text=True,
        timeout=240,
    )
    assert final.returncode == 0, final.stderr
    result = json.loads(final.stdout.strip().splitlines()[-1])
    stream = build_stream(seed)
    expected = json.loads(json.dumps(oracle_observables(stream)))
    assert result == expected
    assert crashes == 4
