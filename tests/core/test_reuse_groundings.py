"""Tests for the grounding-reuse fast path of the SCC algorithm.

``reuse_groundings=True`` must be a pure optimisation: identical
existence answers, all outputs still Definition-1 valid, and at most
one extra database query per component when seeds conflict.
"""

import random

import pytest

from repro.core import parse_queries, scc_coordinate, verify_result_set
from repro.db import DatabaseBuilder
from repro.networks import gnp_digraph, member_name
from repro.workloads import (
    list_workload,
    queries_from_structure,
    shared_venue_workload,
    vacation_database,
    vacation_queries,
    venues_database,
)


class TestEquivalence:
    def test_vacation_example(self):
        db = vacation_database()
        queries = vacation_queries()
        plain = scc_coordinate(db, queries)
        fast = scc_coordinate(db, queries, reuse_groundings=True)
        assert fast.found == plain.found
        assert fast.chosen.member_set() == plain.chosen.member_set()
        assert verify_result_set(db, queries, fast.chosen).ok

    def test_list_workload(self, small_members_db):
        queries = list_workload(15)
        fast = scc_coordinate(small_members_db, queries, reuse_groundings=True)
        assert fast.found and fast.chosen.size == 15
        for candidate in fast.candidates:
            assert verify_result_set(small_members_db, queries, candidate).ok
        # Linear DB work: one (seeded) query per component.
        assert fast.stats.db_queries <= 2 * len(queries)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_structures_agree(self, seed, small_members_db):
        rng = random.Random(seed)
        n = rng.randrange(3, 9)
        structure = gnp_digraph(n, 0.3, seed=seed)
        queries = queries_from_structure(structure)
        plain = scc_coordinate(small_members_db, queries)
        fast = scc_coordinate(small_members_db, queries, reuse_groundings=True)
        assert fast.found == plain.found
        assert {c.member_set() for c in fast.candidates} == {
            c.member_set() for c in plain.candidates
        }
        for candidate in fast.candidates:
            assert verify_result_set(small_members_db, queries, candidate).ok


class TestSeedConflictFallback:
    def test_shared_venue_chain_still_works(self):
        # Shared-venue queries force one value through the whole chain:
        # the seed from a successor is compatible here, but this
        # exercises the unification-heavy path.
        from repro.networks import list_digraph

        db = venues_database(venues=4)
        queries = shared_venue_workload(list_digraph(5))
        fast = scc_coordinate(db, queries, reuse_groundings=True)
        assert fast.found and fast.chosen.size == 5
        assert verify_result_set(db, queries, fast.chosen).ok

    def test_fallback_when_seed_conflicts(self):
        # b picks venue 10's row when alone; a pins capacity 11 and
        # insists on sharing the venue id — the seeded value conflicts
        # and the full combined query must recover the coordination.
        db = (
            DatabaseBuilder()
            .table("Venues", ["venueId", "capacity"], key="venueId")
            .rows("Venues", [("v1", 10), ("v2", 11)])
            .build()
        )
        queries = parse_queries(
            """
            b: {} R(y, B) :- Venues(y, cap);
            a: {R(x, B)} R(x, A) :- Venues(x, 11);
            """
        )
        plain = scc_coordinate(db, queries)
        fast = scc_coordinate(db, queries, reuse_groundings=True)
        assert plain.found and fast.found
        best_fast = max(c.size for c in fast.candidates)
        best_plain = max(c.size for c in plain.candidates)
        assert best_fast == best_plain == 2
        chosen = next(c for c in fast.candidates if c.size == 2)
        assert verify_result_set(db, queries, chosen).ok
        # The winning pair shares venue v2.
        assert chosen.value_of("a", "x") == "v2"
        assert chosen.value_of("b", "y") == "v2"

    def test_seeded_counter_recorded(self, small_members_db):
        queries = list_workload(10)
        fast = scc_coordinate(small_members_db, queries, reuse_groundings=True)
        assert fast.stats.extra.get("seeded_queries", 0) >= 1
