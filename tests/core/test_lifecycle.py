"""The query-lifecycle API: handles, states, callbacks, batches.

Covers the handle state machine (PENDING → SATISFIED | RETRACTED |
REJECTED), handle/engine resolution callbacks, ``status`` including
name reuse, ``submit_many`` batch semantics (one safety pass, one
evaluation per affected component, REJECTED instead of raising), the
ArrivalOutcome compatibility surface, and the ``graph()`` snapshot
guarantee across deletions (flush / retract) as well as arrivals.
"""

import pytest

from repro.core import (
    ArrivalOutcome,
    CoordinationEngine,
    QueryHandle,
    QueryState,
    parse_query,
)
from repro.db import DatabaseBuilder
from repro.errors import PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("Fl", ["flightId", "destination"], key="flightId")
        .rows("Fl", [(1, "Zurich"), (2, "Paris")])
        .build()
    )


class TestHandleStates:
    def test_waiting_submit_returns_pending_handle(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        assert isinstance(handle, QueryHandle)
        assert handle.state is QueryState.PENDING
        assert handle.is_pending and not handle.resolved
        assert engine.status("a") is QueryState.PENDING
        assert engine.handle("a") is handle

    def test_handle_resolves_when_later_arrival_satisfies(self, db):
        engine = CoordinationEngine(db)
        first = engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        second = engine.submit(parse_query("b: {Q(y)} P(y) :- Fl(y, 'Zurich')"))
        # The *old* handle resolved in place during b's submit.
        assert first.state is QueryState.SATISFIED
        assert second.state is QueryState.SATISFIED
        assert set(first.satisfied_with) == {"a", "b"}
        assert first.resolution is second.result
        assert engine.status("a") is QueryState.SATISFIED
        assert engine.handle("a") is None

    def test_retract_resolves_handle(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        returned = engine.retract("a")
        assert returned is handle
        assert handle.state is QueryState.RETRACTED
        assert handle.resolution is None and handle.satisfied_with == ()
        assert engine.pending() == ()
        assert engine.status("a") is QueryState.RETRACTED

    def test_retract_unknown_name_raises(self, db):
        engine = CoordinationEngine(db)
        with pytest.raises(PreconditionError):
            engine.retract("ghost")

    def test_status_tracks_name_reuse(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        engine.retract("a")
        assert engine.status("a") is QueryState.RETRACTED
        engine.submit(parse_query("a: {} Q(x) :- Fl(x, 'Paris')"))
        assert engine.status("a") is QueryState.SATISFIED
        assert engine.status("never-seen") is None

    def test_flush_resolves_handles(self):
        db = members_database(size=30, seed=2012)
        engine = CoordinationEngine(db)
        missing = member_name(30)  # no Members row yet: the body fails
        handle = engine.submit(partner_query(missing, []))
        assert engine.flush().chosen is None
        assert handle.is_pending
        # The missing row appears; the next flush coordinates and
        # resolves the old handle in place.
        db.insert("Members", (missing, "region-x", "interest-x", 3))
        result = engine.flush()
        assert result.chosen is not None
        assert handle.state is QueryState.SATISFIED
        assert handle.resolution is result
        assert handle.satisfied_with == (missing,)


class TestCallbacks:
    def test_handle_callback_fires_on_resolution(self, db):
        engine = CoordinationEngine(db)
        events = []
        handle = engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        handle.on_resolved(lambda h: events.append((h.query, h.state)))
        assert events == []
        engine.retract("a")
        assert events == [("a", QueryState.RETRACTED)]

    def test_late_callback_fires_immediately(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {} Q(x) :- Fl(x, 'Zurich')"))
        assert handle.state is QueryState.SATISFIED
        events = []
        handle.on_resolved(lambda h: events.append(h.state))
        assert events == [QueryState.SATISFIED]

    def test_engine_level_callbacks_see_every_resolution(self, db):
        engine = CoordinationEngine(db)
        seen = []
        engine.on_resolved(lambda h: seen.append((h.query, h.state)))
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        engine.retract("a")
        engine.submit(parse_query("b: {} Q(x) :- Fl(x, 'Paris')"))
        assert seen == [
            ("a", QueryState.RETRACTED),
            ("b", QueryState.SATISFIED),
        ]

    def test_double_resolution_is_an_error(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {} Q(x) :- Fl(x, 'Zurich')"))
        with pytest.raises(RuntimeError):
            handle._resolve(QueryState.RETRACTED)


class TestArrivalOutcomeCompatibility:
    def test_handle_duck_types_arrival_outcome(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {} Q(x) :- Fl(x, 'Zurich')"))
        assert isinstance(handle.outcome, ArrivalOutcome)
        assert handle.query == handle.outcome.query == "a"
        assert handle.component == handle.outcome.component == ("a",)
        assert handle.result is handle.outcome.result
        assert handle.satisfied == handle.outcome.satisfied == ("a",)
        assert handle.coordinated == handle.outcome.coordinated is True

    def test_waiting_handle_outcome_surface(self, db):
        engine = CoordinationEngine(db)
        handle = engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        assert handle.component == ("a",)
        assert handle.result is not None and handle.result.chosen is None
        assert handle.satisfied == () and not handle.coordinated


class TestSubmitMany:
    def test_one_evaluation_per_component(self):
        db = members_database(size=30, seed=2012)
        engine = CoordinationEngine(db, reuse_component_states=False)
        # Two independent pairs plus a singleton: three components.
        batch = [
            partner_query(member_name(1), [member_name(2)]),
            partner_query(member_name(2), [member_name(1)]),
            partner_query(member_name(3), [member_name(4)]),
            partner_query(member_name(4), [member_name(3)]),
            partner_query(member_name(5), []),
        ]
        handles = engine.submit_many(batch)
        assert [h.state for h in handles] == [QueryState.SATISFIED] * 5
        # Handles of one component share a single evaluation result.
        assert handles[0].result is handles[1].result
        assert handles[2].result is handles[3].result
        assert handles[0].result is not handles[2].result
        assert set(handles[0].satisfied_with) == {member_name(1), member_name(2)}
        assert engine.pending() == ()

    def test_each_component_retires_its_own_set(self):
        """Unlike flush (one global chosen set), a batch retires one
        coordinating set per affected component."""
        db = members_database(size=30, seed=2012)
        engine = CoordinationEngine(db)
        handles = engine.submit_many(
            [
                partner_query(member_name(1), [member_name(2)]),
                partner_query(member_name(2), [member_name(1)]),
                partner_query(member_name(3), []),
            ]
        )
        assert all(h.state is QueryState.SATISFIED for h in handles)

    def test_unsafe_batch_member_rejected_not_raised(self, db):
        engine = CoordinationEngine(db)
        batch = [
            parse_query("a: {} R(x, A) :- Fl(x, 'Zurich')"),
            parse_query("b: {} R(y, B) :- Fl(y, 'Paris')"),
            # Matches both heads above: unsafe (Definition 2).
            parse_query("w: {R(u, v)} W(u) :- Fl(u, 'Zurich')"),
            parse_query("c: {} S(z) :- Fl(z, 'Paris')"),
        ]
        handles = engine.submit_many(batch)
        assert handles[0].state is QueryState.SATISFIED
        assert handles[1].state is QueryState.SATISFIED
        assert handles[2].state is QueryState.REJECTED
        assert "unsafe" in handles[2].reason
        assert handles[3].state is QueryState.SATISFIED
        # The rejection is recorded for status (w never entered).
        assert engine.status("w") is QueryState.REJECTED

    def test_duplicate_in_batch_rejected(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        handles = engine.submit_many(
            [parse_query("a: {} S(y) :- Fl(y, 'Paris')")]
        )
        assert handles[0].state is QueryState.REJECTED
        # The pending namesake's status is not shadowed by the rejection.
        assert engine.status("a") is QueryState.PENDING

    def test_batch_admission_is_one_safety_pass(self):
        """k queries landing in one component: one evaluation, not k."""
        db = members_database(size=30, seed=2012)
        engine = CoordinationEngine(db, reuse_component_states=False)
        chain = [
            partner_query(member_name(i), [member_name(i + 1)])
            for i in range(1, 5)
        ] + [partner_query(member_name(5), [])]
        handles = engine.submit_many(chain)
        assert all(h.state is QueryState.SATISFIED for h in handles)
        # All five share the single component evaluation.
        assert len({id(h.result) for h in handles}) == 1


class TestGraphSnapshotConsistency:
    """Satellite: ``graph()`` views are stable across deletions too."""

    def _names_and_edges(self, graph):
        return set(graph.names()), sorted(
            (e.source, e.post_index, e.target, e.head_index)
            for e in graph.extended_edges
        )

    def test_snapshot_stable_across_arrival(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        old = engine.graph()
        names_before, edges_before = self._names_and_edges(old)
        engine.submit(parse_query("b: {S(y)} T(y) :- Fl(y, 'Paris')"))
        assert self._names_and_edges(old) == (names_before, edges_before)

    def test_snapshot_stable_across_retract(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        engine.submit(parse_query("b: {S(y)} T(y) :- Fl(y, 'Paris')"))
        old = engine.graph()
        snapshot = self._names_and_edges(old)
        engine.retract("a")
        assert self._names_and_edges(old) == snapshot
        assert set(engine.graph().names()) == {"b"}

    def test_snapshot_stable_across_satisfaction_and_flush(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        old = engine.graph()
        snapshot = self._names_and_edges(old)
        # Deletion via a satisfying arrival (the _retire path).
        engine.submit(parse_query("b: {Q(y)} P(y) :- Fl(y, 'Zurich')"))
        assert self._names_and_edges(old) == snapshot

        engine.submit(parse_query("c: {} S(z) :- Fl(z, 'Paris')"))
        mid = engine.graph()
        mid_snapshot = self._names_and_edges(mid)
        engine.flush()  # deletion via flush on the same graph object
        assert self._names_and_edges(mid) == mid_snapshot

    def test_unread_old_snapshot_survives_chain_of_mutations(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        old = engine.graph()  # not read before the mutations below
        engine.submit(parse_query("b: {S(y)} T(y) :- Fl(y, 'Paris')"))
        engine.retract("b")
        engine.submit(parse_query("c: {Q(y)} P(y) :- Fl(y, 'Zurich')"))
        assert set(old.names()) == {"a"}


class TestBookkeepingBounds:
    def test_graph_views_are_shared_between_mutations(self, db):
        engine = CoordinationEngine(db)
        engine.submit(parse_query("a: {P(x)} Q(x) :- Fl(x, 'Zurich')"))
        first = engine.graph()
        assert engine.graph() is first  # no per-call allocation
        engine.submit(parse_query("b: {S(y)} T(y) :- Fl(y, 'Paris')"))
        second = engine.graph()
        assert second is not first
        assert set(first.names()) == {"a"}  # old view kept its snapshot
        assert set(second.names()) == {"a", "b"}

    def test_final_state_record_is_bounded(self):
        from repro.core.lifecycle import record_final_state

        record = {}
        for i in range(10):
            record_final_state(record, f"q{i}", QueryState.SATISFIED, cap=4)
        assert list(record) == ["q6", "q7", "q8", "q9"]
        # Re-recording moves a name to the back instead of growing.
        record_final_state(record, "q7", QueryState.RETRACTED, cap=4)
        assert list(record) == ["q6", "q8", "q9", "q7"]
        assert record["q7"] is QueryState.RETRACTED
