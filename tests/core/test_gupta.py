"""Unit tests for the Gupta et al. baseline (safe + unique sets)."""

import pytest

from repro.core import gupta_coordinate, parse_queries, verify_result_set
from repro.db import DatabaseBuilder
from repro.errors import PreconditionError


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("Fl", ["flightId", "destination"], key="flightId")
        .rows("Fl", [(1, "Zurich"), (2, "Paris")])
        .build()
    )


def _band(db_dest="Zurich"):
    """Example 1: band members naming each other — safe and unique."""
    return parse_queries(
        f"""
        chris: {{R(y1, Guy)}} R(x1, Chris) :- Fl(x1, '{db_dest}');
        guy:   {{R(y2, Chris)}} R(x2, Guy) :- Fl(y2, '{db_dest}'), Fl(x2, '{db_dest}');
        """
    )


class TestHappyPath:
    def test_safe_unique_pair_coordinates(self, db):
        queries = _band()
        result = gupta_coordinate(db, queries)
        assert result.found
        assert result.chosen.member_set() == {"chris", "guy"}
        assert verify_result_set(db, queries, result.chosen).ok

    def test_exactly_one_db_query(self, db):
        result = gupta_coordinate(db, _band())
        assert result.stats.db_queries == 1

    def test_failure_when_no_matching_tuples(self, db):
        queries = _band(db_dest="Atlantis")
        result = gupta_coordinate(db, queries)
        assert not result.found

    def test_unification_binds_across_queries(self, db):
        queries = _band()
        result = gupta_coordinate(db, queries)
        # chris's postcondition R(y1, Guy) unified with guy's head
        # R(x2, Guy): both see the same flight id.
        assert result.chosen.value_of("chris", "y1") == result.chosen.value_of(
            "guy", "x2"
        )


class TestPreconditions:
    def test_rejects_non_unique(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Fl(x, 'Zurich');
            b: {} P(y) :- Fl(y, 'Zurich');
            """
        )
        with pytest.raises(PreconditionError, match="unique"):
            gupta_coordinate(db, queries)

    def test_rejects_unsafe(self, db):
        queries = parse_queries(
            """
            a: {P(x, f)} Q(x, A) :- Fl(x, f);
            b: {Q(y, g)} P(y, B) :- Fl(y, g);
            c: {Q(z, h)} P(z, C) :- Fl(z, h);
            """
        )
        with pytest.raises(PreconditionError, match="safe"):
            gupta_coordinate(db, queries)

    def test_check_can_be_disabled(self, db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Fl(x, 'Zurich');
            b: {} P(y) :- Fl(y, 'Zurich');
            """
        )
        result = gupta_coordinate(db, queries, check_preconditions=False)
        # Outside its contract the baseline may still succeed here: the
        # one matching head per postcondition exists.
        assert result.found

    def test_unmatched_postcondition_fails_whole_set(self, db):
        queries = parse_queries(
            """
            a: {Gone(x)} Q(x) :- Fl(x, 'Zurich');
            """
        )
        result = gupta_coordinate(db, queries, check_preconditions=False)
        assert not result.found

    def test_empty_set(self, db):
        result = gupta_coordinate(db, [])
        assert not result.found
