"""Unit tests for Definition 1 (coordinating-set verification)."""

import pytest

from repro.core import (
    complete_assignment,
    grounded_view,
    parse_queries,
    parse_query,
    verify_coordinating_set,
)
from repro.db import DatabaseBuilder
from repro.logic import Variable


@pytest.fixture
def db():
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich"), (102, "Paris")])
        .build()
    )


@pytest.fixture
def pair():
    return parse_queries(
        """
        q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
        q2: {} R(Chris, y) :- Flights(y, 'Zurich');
        """
    )


class TestVerification:
    def test_valid_set(self, db, pair):
        assignment = {Variable("x", "q1"): 101, Variable("y", "q2"): 101}
        assert verify_coordinating_set(db, pair, ["q1", "q2"], assignment)

    def test_q2_alone_is_coordinating(self, db, pair):
        assignment = {Variable("y", "q2"): 101}
        assert verify_coordinating_set(db, pair, ["q2"], assignment)

    def test_q1_alone_fails_condition_3(self, db, pair):
        # q1's postcondition R(Chris, 101) has no matching head.
        assignment = {Variable("x", "q1"): 101}
        report = verify_coordinating_set(db, pair, ["q1"], assignment)
        assert not report.ok
        assert "postcondition" in report.reason

    def test_unassigned_variable_fails_condition_1(self, db, pair):
        report = verify_coordinating_set(db, pair, ["q2"], {})
        assert not report.ok
        assert "unassigned" in report.reason

    def test_body_atom_not_in_instance_fails_condition_2(self, db, pair):
        assignment = {Variable("y", "q2"): 102}  # flight 102 goes to Paris
        report = verify_coordinating_set(db, pair, ["q2"], assignment)
        assert not report.ok
        assert "body" in report.reason

    def test_mismatched_groundings_fail_condition_3(self, db, pair):
        db.insert("Flights", (103, "Zurich"))
        assignment = {Variable("x", "q1"): 101, Variable("y", "q2"): 103}
        report = verify_coordinating_set(db, pair, ["q1", "q2"], assignment)
        assert not report.ok

    def test_empty_set_rejected(self, db, pair):
        assert not verify_coordinating_set(db, pair, [], {}).ok

    def test_unknown_member_rejected(self, db, pair):
        assert not verify_coordinating_set(db, pair, ["zzz"], {}).ok

    def test_postcondition_can_match_own_head(self, db):
        # Condition 3 is about the set's heads as a whole, including the
        # query's own.
        query = parse_query("selfq: {R(x)} R(x) :- Flights(x, 'Zurich')")
        assignment = {Variable("x", "selfq"): 101}
        assert verify_coordinating_set(db, [query], ["selfq"], assignment)


class TestGroundedView:
    def test_view_contents(self, db, pair):
        by_name = {q.name: q for q in pair}
        assignment = {Variable("x", "q1"): 101, Variable("y", "q2"): 101}
        view = grounded_view(by_name, ["q1", "q2"], assignment)
        assert len(view.postconditions) == 1
        assert len(view.heads) == 2
        assert view.satisfied()

    def test_view_detects_violation(self, db, pair):
        db.insert("Flights", (103, "Zurich"))
        by_name = {q.name: q for q in pair}
        assignment = {Variable("x", "q1"): 101, Variable("y", "q2"): 103}
        view = grounded_view(by_name, ["q1", "q2"], assignment)
        assert not view.satisfied()


class TestCompleteAssignment:
    def test_fills_free_variables_from_domain(self, db):
        query = parse_query("q: {} R(x, free) :- Flights(x, 'Zurich')")
        by_name = {"q": query}
        partial = {Variable("x", "q"): 101}
        total = complete_assignment(db, by_name, ["q"], partial)
        assert total is not None
        assert Variable("free", "q") in total
        assert total[Variable("free", "q")] in db.domain()

    def test_complete_when_nothing_missing(self, db):
        query = parse_query("q: {} R(x) :- Flights(x, 'Zurich')")
        partial = {Variable("x", "q"): 101}
        total = complete_assignment(db, {"q": query}, ["q"], partial)
        assert total == partial

    def test_none_when_domain_empty(self):
        empty = DatabaseBuilder().table("T", ["a"]).build()
        query = parse_query("q: {} R(free) :- ∅")
        total = complete_assignment(empty, {"q": query}, ["q"], {})
        assert total is None
