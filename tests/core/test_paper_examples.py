"""End-to-end reproduction of every worked example in the paper.

Each test maps to a specific section/figure so a reviewer can check the
reproduction claim by claim:

* Section 2.1 — Gwyneth & Chris fly to Zurich (choose-1 semantics);
* Section 2.2 / Figures 1–2 — the flight–hotel vacation scenario;
* Example 1 — safety/uniqueness of the band's queries, with and
  without Gwyneth;
* Section 4 — the components-graph walkthrough (q1..q6);
* Section 5 — the movies example, option lists and cleaning traces.
"""

import pytest

from repro.core import (
    CoordinationGraph,
    consistent_coordinate,
    find_maximum_coordinating_set,
    gupta_coordinate,
    is_unique,
    parse_queries,
    safety_report,
    scc_coordinate,
    verify_result_set,
)
from repro.db import DatabaseBuilder
from repro.errors import PreconditionError
from repro.workloads import (
    expected_coordination_edges,
    expected_option_lists,
    movies_database,
    movies_queries,
    movies_setup,
    vacation_database,
    vacation_queries,
)


class TestSection21Gwyneth:
    """The introductory example of entangled-query semantics."""

    @pytest.fixture
    def db(self):
        return (
            DatabaseBuilder()
            .table("Flights", ["flightId", "destination"], key="flightId")
            .rows("Flights", [(101, "Zurich")])
            .build()
        )

    @pytest.fixture
    def queries(self):
        return parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )

    def test_paper_witness_h(self, db, queries):
        # "the queries form a coordinating set under the assignment h
        # where h(y) = 101 and h(x) = 101."
        result = scc_coordinate(db, queries)
        assert result.found
        assert result.chosen.value_of("q1", "x") == 101
        assert result.chosen.value_of("q2", "y") == 101

    def test_choose_1_with_multiple_flights(self, queries):
        # "even if there are multiple flights to Zurich ... only one
        # flight number [is] chosen and returned."
        db = (
            DatabaseBuilder()
            .table("Flights", ["flightId", "destination"], key="flightId")
            .rows("Flights", [(101, "Zurich"), (102, "Zurich")])
            .build()
        )
        result = scc_coordinate(db, queries)
        assert result.chosen.value_of("q1", "x") == result.chosen.value_of(
            "q2", "y"
        )

    def test_no_flight_no_coordination_for_gwyneth(self, queries):
        db = (
            DatabaseBuilder()
            .table("Flights", ["flightId", "destination"], key="flightId")
            .rows("Flights", [(5, "Paris")])
            .build()
        )
        result = scc_coordinate(db, queries)
        assert not result.found


class TestSection22Vacation:
    """Figures 1 and 2 and the Section 4 walkthrough."""

    def test_figure_2_graph(self):
        graph = CoordinationGraph.build(vacation_queries())
        for name, successors in expected_coordination_edges().items():
            assert graph.graph.successors(name) == successors

    def test_sccs_are_the_papers(self):
        from repro.graphs import condensation

        graph = CoordinationGraph.build(vacation_queries())
        cond = condensation(graph.graph)
        members = {frozenset(c) for c in cond.components}
        assert members == {
            frozenset({"qC", "qG"}),
            frozenset({"qJ"}),
            frozenset({"qW"}),
        }

    def test_chris_guy_coordinate_jonny_will_fail(self):
        db = vacation_database()
        queries = vacation_queries()
        result = scc_coordinate(db, queries)
        assert result.chosen.member_set() == {"qC", "qG"}
        assert verify_result_set(db, queries, result.chosen).ok
        # qJ and qW never become candidates.
        for candidate in result.candidates:
            assert "qJ" not in candidate and "qW" not in candidate

    def test_baseline_cannot_handle_it(self):
        with pytest.raises(PreconditionError):
            gupta_coordinate(vacation_database(), vacation_queries())

    def test_maximum_is_chris_guy(self):
        db = vacation_database()
        maximum = find_maximum_coordinating_set(db, vacation_queries())
        assert maximum.member_set() == {"qC", "qG"}


class TestExample1Coldplay:
    """Example 1: adding Gwyneth kills uniqueness but not safety."""

    def _band(self, with_gwyneth: bool):
        source = """
            chris: {R(y1, Guy)} R(x1, Chris) :- Fl(x1, 'Zurich');
            guy:   {R(y2, Chris)} R(x2, Guy) :- Fl(x2, 'Zurich');
        """
        if with_gwyneth:
            source += (
                "gwyneth: {R(y3, Chris)} R(x3, Gwyneth) :- Fl(x3, 'Zurich');"
            )
        return parse_queries(source)

    def test_band_alone_safe_and_unique(self):
        graph = CoordinationGraph.build(self._band(False))
        assert safety_report(graph).is_safe
        assert is_unique(graph)

    def test_with_gwyneth_not_unique(self):
        graph = CoordinationGraph.build(self._band(True))
        assert safety_report(graph).is_safe
        assert not is_unique(graph)

    def test_scc_algorithm_covers_both(self):
        db = (
            DatabaseBuilder()
            .table("Fl", ["flightId", "destination"], key="flightId")
            .rows("Fl", [(1, "Zurich")])
            .build()
        )
        for with_g in (False, True):
            queries = self._band(with_g)
            result = scc_coordinate(db, queries)
            assert result.found
            expected_size = 3 if with_g else 2
            assert result.chosen.size == expected_size


class TestSection5Movies:
    """The movies walkthrough, including the cleaning traces."""

    def test_option_lists(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        assert result.option_lists == expected_option_lists()

    def test_cinemark_rejected_by_cleaning(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        assert ("Cinemark",) not in {c.value for c in result.candidates}

    def test_regal_coordinating_set(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        regal = next(c for c in result.candidates if c.value == ("Regal",))
        assert set(regal.users) == {"Chris", "Jonny", "Will"}

    def test_guy_only_at_amc(self):
        result = consistent_coordinate(
            movies_database(), movies_setup(), movies_queries()
        )
        for candidate in result.candidates:
            if "Guy" in candidate.users:
                assert candidate.value == ("AMC",)

    def test_will_is_not_chris_friend_yet_nameable(self):
        # "Will is not a friend of Chris, yet it is possible for Chris
        # to submit a query where the constant Will appears."
        db = movies_database()
        assert not db.contains("C", ("Chris", "Will"))
        result = consistent_coordinate(db, movies_setup(), movies_queries())
        regal = next(c for c in result.candidates if c.value == ("Regal",))
        assert "Chris" in regal.users and "Will" in regal.users
