"""Unit tests for dot export of coordination structures."""

from repro.core import (
    CoordinationGraph,
    condensation_dot,
    coordination_graph_dot,
    extended_graph_dot,
    pruned_graph_dot,
)
from repro.graphs import DiGraph, condensation
from repro.workloads import vacation_queries


def _vacation_graph():
    return CoordinationGraph.build(vacation_queries())


class TestCoordinationGraphDot:
    def test_contains_all_nodes_and_edges(self):
        dot = coordination_graph_dot(_vacation_graph())
        assert dot.startswith('digraph "coordination"')
        for name in ("qC", "qG", "qJ", "qW"):
            assert f'"{name}"' in dot
        assert '"qW" -> "qJ";' in dot
        assert '"qC" -> "qG";' in dot
        assert dot.rstrip().endswith("}")

    def test_no_spurious_edges(self):
        dot = coordination_graph_dot(_vacation_graph())
        assert '"qC" -> "qJ"' not in dot
        assert '"qG" -> "qW"' not in dot


class TestExtendedGraphDot:
    def test_edges_carry_atom_labels(self):
        dot = extended_graph_dot(_vacation_graph())
        # qG -> qC has two labelled edges (R and Q postconditions).
        assert dot.count('"qG" -> "qC"') == 2
        assert "⇒" in dot
        assert "label=" in dot


class TestCondensationDot:
    def test_members_in_labels(self):
        graph = _vacation_graph()
        cond = condensation(graph.graph)
        dot = condensation_dot(cond)
        assert "qC + qG" in dot or "qG + qC" in dot
        assert "c0" in dot
        # DAG edges between boxes exist.
        assert "->" in dot


class TestPrunedGraphDot:
    def test_highlighting(self):
        graph = DiGraph()
        graph.add_edges([("Chris", "Will"), ("Jonny", "Chris")])
        dot = pruned_graph_dot(graph, highlight=["Chris"])
        assert '"Chris" [style=filled' in dot
        assert '"Will";' in dot

    def test_quotes_escaped(self):
        graph = DiGraph()
        graph.add_node('we"ird')
        dot = pruned_graph_dot(graph)
        assert '\\"' in dot
