"""Sharded service equivalence: N shards ≡ one engine, byte for byte.

Weak components never interact, so any placement of whole components
onto independent engine shards must be unobservable:
:class:`ShardedCoordinationService` with ≥2 shards is run against a
single :class:`CoordinationEngine` on identical submit/retract streams
and must produce identical coordinating sets — same members *and* same
assignments — at every step, on both the partner (Members) and flights
workloads.  Routing internals (the one-component-one-shard invariant,
migration on spanning arrivals, deterministic default placement) are
asserted separately.
"""

import random

import pytest

from repro.core import (
    CoordinationEngine,
    QueryState,
    ShardedCoordinationService,
)
from repro.errors import PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query
from repro.workloads.flights import user_name, worst_case_database

from service_testing import (
    DB_SIZE,
    assert_invariants as _assert_invariants,
    chosen_bytes as _chosen_bytes,
    flight_query,
    partner_stream as _partner_stream,
    run_equivalent_streams as _run_equivalent_streams,
)


@pytest.mark.parametrize("backend", ["shared", "replicated"])
@pytest.mark.parametrize("shards", [2, 3, 5])
@pytest.mark.parametrize("seed", range(4))
def test_partner_workload_equivalence(shards, seed, backend):
    rng = random.Random(seed)
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=shards, backend=backend)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    # Duplicate submissions in the stream are themselves part of the
    # equivalence check: both ends must reject them identically.
    _run_equivalent_streams(service, engine, _partner_stream(rng, 70))


@pytest.mark.parametrize("backend", ["shared", "replicated"])
@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("seed", range(3))
def test_flights_workload_equivalence(shards, seed, backend):
    rng = random.Random(100 + seed)
    users = 24
    db = worst_case_database(num_flights=20, num_users=users)
    service = ShardedCoordinationService(db, shards=shards, backend=backend)
    engine = CoordinationEngine(
        worst_case_database(num_flights=20, num_users=users)
    )
    events = []
    for _ in range(60):
        roll = rng.random()
        if roll < 0.2:
            events.append(("retract", rng.randrange(1 << 30)))
        else:
            index = rng.randrange(users)
            partners = rng.sample(
                [i for i in range(users) if i != index],
                k=rng.choice((0, 1, 1, 2)),
            )
            events.append(
                (
                    "submit",
                    flight_query(
                        user_name(index), [user_name(p) for p in partners]
                    ),
                )
            )
    _run_equivalent_streams(service, engine, events)


def test_submit_many_equivalence():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=3)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    batch = [
        partner_query(member_name(1), [member_name(2)]),
        partner_query(member_name(2), [member_name(1)]),
        partner_query(member_name(3), [member_name(35)]),  # waits
        partner_query(member_name(3), []),  # duplicate in batch: rejected
        partner_query(member_name(4), []),
    ]
    service_handles = service.submit_many(batch)
    engine_handles = engine.submit_many(batch)
    for ours, theirs in zip(service_handles, engine_handles):
        assert ours.state is theirs.state
        assert ours.satisfied == theirs.satisfied
        assert _chosen_bytes(ours.result) == _chosen_bytes(theirs.result)
    assert set(service.pending()) == set(engine.pending())
    _assert_invariants(service)


def test_flush_drain_reaches_single_engine_fixpoint():
    """Per-shard flush retires up to one set per shard per call (the
    documented deviation), but draining reaches the same final state."""
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=3)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))

    # Components whose bodies fail now (missing Members rows).
    for i in range(DB_SIZE, DB_SIZE + 6):
        query = partner_query(member_name(i), [])
        service.submit(query)
        engine.submit(query)
    for i in range(DB_SIZE, DB_SIZE + 6):
        db.insert("Members", (member_name(i), "region-x", "interest-x", 5))
        engine.db.insert(
            "Members", (member_name(i), "region-x", "interest-x", 5)
        )

    service_retired = set()
    while True:
        results = service.flush()
        retired = [r.chosen.members for r in results if r.chosen is not None]
        if not retired:
            break
        for members in retired:
            service_retired.update(members)
    engine_retired = set()
    while True:
        result = engine.flush()
        if result.chosen is None:
            break
        engine_retired.update(result.chosen.members)
    assert service_retired == engine_retired
    assert set(service.pending()) == set(engine.pending()) == set()


def test_spanning_arrival_migrates_smaller_into_larger():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=4)
    # Least-loaded placement spreads edge-free arrivals deterministically:
    # the first two waiting queries land on shards 0 and 1.
    a, b = member_name(0), member_name(1)
    service.submit(partner_query(a, [member_name(100)]))  # waits on 100
    service.submit(partner_query(b, [member_name(101)]))  # waits on 101
    assert service.shard_of(a) == 0
    assert service.shard_of(b) == 1

    # A third query naming both spans the two shards: one migrates.
    bridge = member_name(25)
    service.submit(partner_query(bridge, [a, b]))
    assert service.migrations >= 1
    assert len({service.shard_of(n) for n in (a, b, bridge)}) == 1
    _assert_invariants(service)


def test_handle_identity_survives_migration():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=4)
    states = []
    a, b = member_name(0), member_name(1)
    ha = service.submit(partner_query(a, [member_name(100)]))
    ha.on_resolved(lambda h: states.append(h.state))
    service.submit(partner_query(b, [member_name(101)]))
    service.submit(partner_query(member_name(25), [a, b]))
    # Whatever shard a lives on now, the service still returns the same
    # handle object, and its callbacks fire on resolution there.
    assert service.handle(a) is ha
    service.retract(a)
    assert states == [QueryState.RETRACTED]
    assert service.status(a) is QueryState.RETRACTED


def test_service_wide_duplicate_rejected():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=3)
    a = member_name(0)
    service.submit(partner_query(a, [member_name(100)]))
    with pytest.raises(PreconditionError):
        service.submit(partner_query(a, []))
    # ... regardless of which shard the duplicate would hash to.
    assert service.status(a) is QueryState.PENDING


def test_single_shard_degenerates_to_engine():
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=1)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))
    rng = random.Random(7)
    _run_equivalent_streams(service, engine, _partner_stream(rng, 40))
    assert service.migrations == 0


def test_submit_many_survives_cross_shard_migration_of_batch_member():
    """A later batch member's routing may migrate an *earlier* batch
    member's component to another shard; evaluation must group by the
    shard holding each query at evaluation time, not admission time."""
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(db, shards=2)
    engine = CoordinationEngine(members_database(size=DB_SIZE, seed=2012))

    # Pre-seed shard 0 with a two-query waiting component {a, b}: the
    # first arrival takes the least-loaded shard 0, the second is
    # incident to it and follows.
    a, b = member_name(0), member_name(1)
    for query in (partner_query(a, [b]), partner_query(b, [member_name(100)])):
        service.submit(query)
        engine.submit(query)
    assert service.shard_of(a) == service.shard_of(b) == 0

    solo = member_name(2)
    bridge = member_name(3)
    batch = [
        # Edge-free, so it lands on the now-least-loaded shard 1.
        partner_query(solo, [member_name(101)]),
        # Spans both shards: solo's singleton (shard 1) migrates into
        # shard 0's larger component before this one is admitted.
        partner_query(bridge, [solo, a]),
    ]
    service_handles = service.submit_many(batch)
    engine_handles = engine.submit_many(batch)
    for ours, theirs in zip(service_handles, engine_handles):
        assert ours.state is theirs.state
        assert ours.satisfied == theirs.satisfied
        assert _chosen_bytes(ours.result) == _chosen_bytes(theirs.result)
    assert service.migrations >= 1
    assert set(service.pending()) == set(engine.pending())
    _assert_invariants(service)


# ---------------------------------------------------------------------------
# ServiceConfig: the typed configuration surface and the kwargs
# deprecation path (both must construct identical services)
# ---------------------------------------------------------------------------
class TestServiceConfig:
    def _db(self):
        return members_database(size=DB_SIZE, seed=2012)

    def test_config_object_constructs_without_warnings(self, recwarn):
        from repro.core import ServiceConfig

        config = ServiceConfig(shards=3, backend="replicated")
        with ShardedCoordinationService(self._db(), config) as service:
            assert service.shard_count == 3
            assert service.config is config
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert not deprecations

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="ServiceConfig"):
            service = ShardedCoordinationService(self._db(), shards=3)
        with service:
            assert service.shard_count == 3

    def test_legacy_positional_shards_still_works(self):
        with ShardedCoordinationService(self._db(), 3) as service:
            assert service.shard_count == 3

    def test_config_and_kwargs_together_rejected(self):
        from repro.core import ServiceConfig

        with pytest.raises(PreconditionError):
            ShardedCoordinationService(
                self._db(), ServiceConfig(), shards=2
            )

    def test_unknown_kwarg_rejected_with_field_list(self):
        with pytest.raises(PreconditionError, match="remote_shards"):
            ShardedCoordinationService(self._db(), shard_count=2)

    def test_evolve_returns_updated_frozen_copy(self):
        from repro.core import ServiceConfig

        base = ServiceConfig(shards=2)
        grown = base.evolve(shards=4, backend="replicated")
        assert (base.shards, grown.shards) == (2, 4)
        assert grown.backend == "replicated"
        with pytest.raises(Exception):
            grown.shards = 5  # frozen

    def test_remote_executor_requires_addresses(self):
        from repro.core import ServiceConfig

        with pytest.raises(PreconditionError, match="remote"):
            ShardedCoordinationService(
                self._db(), ServiceConfig(executor="remote")
            )
        with pytest.raises(PreconditionError, match="remote"):
            ShardedCoordinationService(
                self._db(),
                ServiceConfig(remote_shards=(("127.0.0.1", 1),)),
            )
