"""Tests for the parallel Consistent Coordination Algorithm.

The paper's stated future work: check candidate values in parallel.
The invariant is *exact agreement* with the serial implementation —
same candidates, same chosen value, same groundings.
"""

import pytest

from repro.core import (
    ConsistentQuery,
    FriendSlot,
    consistent_coordinate,
    consistent_coordinate_parallel,
    partition_values,
)
from repro.workloads import (
    flight_setup,
    movies_database,
    movies_queries,
    movies_setup,
    worst_case_database,
    worst_case_queries,
)


class TestPartition:
    def test_even_split(self):
        values = [(i,) for i in range(6)]
        chunks = partition_values(values, 3)
        assert [len(c) for c in chunks] == [2, 2, 2]
        assert [v for chunk in chunks for v in chunk] == values

    def test_uneven_split(self):
        values = [(i,) for i in range(7)]
        chunks = partition_values(values, 3)
        assert [len(c) for c in chunks] == [3, 2, 2]

    def test_more_chunks_than_values(self):
        values = [(1,), (2,)]
        chunks = partition_values(values, 10)
        assert len(chunks) == 2

    def test_single_chunk(self):
        values = [(1,), (2,)]
        assert partition_values(values, 1) == [((1,), (2,))]


class TestAgreementWithSerial:
    def test_movies_example(self):
        db = movies_database()
        setup = movies_setup()
        queries = movies_queries()
        serial = consistent_coordinate(db, setup, queries)
        parallel = consistent_coordinate_parallel(db, setup, queries, workers=2)
        assert parallel.found == serial.found
        assert [(c.value, c.users) for c in parallel.candidates] == [
            (c.value, c.users) for c in serial.candidates
        ]
        assert parallel.chosen.value == serial.chosen.value
        assert parallel.chosen.selections == serial.chosen.selections

    def test_worst_case_workload(self):
        db = worst_case_database(num_flights=12, num_users=5)
        setup = flight_setup()
        queries = worst_case_queries(5)
        serial = consistent_coordinate(db, setup, queries)
        parallel = consistent_coordinate_parallel(db, setup, queries, workers=3)
        assert len(parallel.candidates) == len(serial.candidates) == 12
        assert parallel.chosen.value == serial.chosen.value

    def test_no_coordinating_set(self):
        db = worst_case_database(num_flights=4, num_users=2)
        setup = flight_setup()
        # Two users, but neither is the other's friend? Complete graph
        # makes them friends; instead require 3 friends: impossible.
        queries = [
            ConsistentQuery("traveller000", {}, [FriendSlot(count=3)]),
            ConsistentQuery("traveller001", {}, [FriendSlot()]),
        ]
        serial = consistent_coordinate(db, setup, queries)
        parallel = consistent_coordinate_parallel(db, setup, queries, workers=2)
        assert not serial.found and not parallel.found

    def test_single_worker_delegates_to_serial(self):
        db = movies_database()
        result = consistent_coordinate_parallel(
            db, movies_setup(), movies_queries(), workers=1
        )
        assert result.found
        # Serial path records cleaning rounds; parallel parent does not.
        assert result.stats.cleaning_rounds > 0

    def test_worker_count_recorded(self):
        db = worst_case_database(num_flights=8, num_users=3)
        result = consistent_coordinate_parallel(
            db, flight_setup(), worst_case_queries(3), workers=2
        )
        assert result.stats.extra["workers"] == 2
