"""Serving front: gateway protocol, backpressure, teardown, control lane.

Four claims from the serving-front design (DESIGN.md §12):

* **protocol** — every request/reply and event frame survives the
  length-prefixed :mod:`repro.db.wire` stream transport byte-exactly
  (property-tested with the wire suite's own strategies), and error
  replies carry the same kind taxonomy the process executor uses;
* **backpressure** — a client that pipelines far past ``max_inflight``
  without reading replies stalls itself, never the gateway: all
  replies eventually arrive, nothing is dropped, no queue grows
  unboundedly;
* **teardown** — a client that disconnects mid-stream leaks nothing:
  its submissions keep resolving inside the service and the gateway's
  connection table returns to empty (asserted after *every* test by an
  autouse fixture);
* **control lane** — admission-path probes stay responsive while every
  worker grinds a long multi-component ``evaluate`` frame, under both
  the thread and process executors.

Plus the :class:`~repro.core.executor.CallbackDispatcher` determinism
regression: deferred callback errors re-raise completely and in order
at ``drain(raise_errors=True)``/``close()`` — one as itself, several
as one ``ExceptionGroup`` — never silently on some later call.
"""

import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CallbackDispatcher,
    EntangledQuery,
    Gateway,
    GatewayClient,
    GatewayError,
    ShardedCoordinationService,
)
from repro.core.gateway import pack_frame, _checked_length
from repro.db import wire
from repro.errors import PreconditionError
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

# The wire suite's strategies are the protocol's ground truth; reuse
# them rather than re-deriving a weaker generator here.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "db"))
from test_wire import atoms, names, values  # noqa: E402

DB_SIZE = 300
DEADLINE = 10.0


@pytest.fixture(autouse=True)
def no_leaked_gateway_state():
    """Every test must tear its gateways down (sockets, loop threads)."""
    yield
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t.name.startswith("repro-gateway") and t.is_alive()
        ]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked gateway threads: {leaked}")


def _service(**kwargs) -> ShardedCoordinationService:
    db = members_database(size=DB_SIZE, seed=2012)
    return ShardedCoordinationService(db, workers=2, **kwargs)


def _stalled_join(user: str) -> EntangledQuery:
    """A pending singleton whose evaluation is real multi-way join work
    (the benchmark's stalled-join shape: karma never matches a region)."""
    karma = Variable("x")
    region, interest = Variable("r"), Variable("i1")
    body = [
        Atom("Members", [user, region, Variable("i0"), karma]),
        Atom("Members", [Variable("v1"), region, interest, Variable("k1")]),
        Atom("Members", [Variable("v2"), region, interest, Variable("k2")]),
        Atom("Members", [Variable("w"), karma, interest, Variable("k3")]),
    ]
    posts = [Atom("R", [Variable("y0"), user])]
    head = [Atom("R", [karma, user])]
    return EntangledQuery(user, posts, head, body)


def _wait_connections(gateway: Gateway, count: int) -> None:
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        if gateway.connection_count == count:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"gateway still has {gateway.connection_count} connections "
        f"(wanted {count})"
    )


# ---------------------------------------------------------------------------
# Protocol: framed transport round trips (wire-suite strategies)
# ---------------------------------------------------------------------------
@given(values)
def test_framed_transport_round_trip(value):
    payload = {"op": "probe", "id": 7, "payload": wire.encode_value(value)}
    frame = pack_frame(payload)
    length = _checked_length(frame[:4])
    assert length == len(frame) - 4
    assert wire.loads(frame[4:]) == payload


@settings(max_examples=50)
@given(
    names,
    st.lists(atoms, max_size=2),
    st.lists(atoms, min_size=1, max_size=2),
    st.lists(atoms, max_size=2),
)
def test_query_frames_round_trip(name, post, head, body):
    query = EntangledQuery(name, post, head, body)
    frame = pack_frame({"op": "submit", "id": 0, "query": wire.encode_query(query)})
    decoded = wire.loads(frame[4:])
    assert wire.decode_query(decoded["query"]) == query


def test_oversized_length_prefix_rejected():
    import struct

    with pytest.raises(GatewayError):
        _checked_length(struct.pack(">I", 33 * 1024 * 1024))


def test_gateway_round_trips_and_error_kinds():
    service = _service()
    try:
        with Gateway(service) as gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                assert client.ping()
                # Admission reply precedes resolution (pending state),
                # the record streams on the event lane afterwards.
                reply = client.submit(partner_query(member_name(1), [member_name(2)]))
                assert reply["state"] == "pending" and reply["name"] == member_name(1)
                assert client.status(member_name(1)) == "pending"
                assert member_name(1) in client.pending()
                client.submit(partner_query(member_name(2), [member_name(1)]))
                assert client.wait_resolved(member_name(1), DEADLINE)["state"] == "satisfied"
                assert client.wait_resolved(member_name(2), DEADLINE)["state"] == "satisfied"

                # Inserts and stats ride the same socket.
                assert client.insert(
                    "Members", ("newcomer", "region", "interest", 1)
                )
                stats = client.stats()
                assert len(stats["pending_per_shard"]) == 2
                assert isinstance(client.probe(0), tuple)
                assert client.flush_drain() is not None

                # Error taxonomy: unknown op and duplicate admission are
                # precondition-kind; a malformed query payload is
                # protocol-kind (client surfaces both loudly).
                with pytest.raises(PreconditionError):
                    client.request("frobnicate")
                client.submit(partner_query("dup", ["nobody_yet"]))
                rejected = client.submit(partner_query("dup", ["nobody_yet"]))
                assert rejected["state"] == "rejected"
                with pytest.raises(GatewayError):
                    client.request("submit", query={"not": "a query"})
        assert gateway.connection_count == 0
    finally:
        service.close()


def test_submit_many_batches_and_rejections_stream_records():
    service = _service()
    try:
        with Gateway(service) as gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                queries = [
                    partner_query(member_name(i), [member_name(1000 + i)])
                    for i in range(6)
                ]
                # A duplicate inside the batch is rejected per-entry,
                # without failing the batch (submit_many_nowait
                # semantics surfaced through the wire).
                queries.append(partner_query(member_name(0), [member_name(2000)]))
                admissions = client.submit_many(queries)
                states = [a["state"] for a in admissions]
                assert states == ["pending"] * 6 + ["rejected"]
                # Rejected handles resolve immediately: their records
                # arrive on the event stream like any resolution.
                record = client.wait_resolved(member_name(0), DEADLINE)
                assert record["state"] == "rejected"
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Backpressure: a slow client throttles itself, loses nothing
# ---------------------------------------------------------------------------
def test_pipelined_burst_far_past_inflight_cap_loses_nothing():
    service = _service()
    try:
        with Gateway(service, max_inflight=4, max_batch=8) as gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                count = 80
                rids = [
                    client.request_nowait(
                        "submit",
                        query=wire.encode_query(
                            partner_query(
                                member_name(i), [member_name(5000 + i)]
                            )
                        ),
                    )
                    for i in range(count)
                ]
                # Only now start reading: the gateway had to absorb the
                # whole burst with a 4-deep admission queue — by parking
                # the reader task, never by buffering or dropping.
                replies = [client.read_reply(rid) for rid in rids]
                assert [r["name"] for r in replies] == [
                    member_name(i) for i in range(count)
                ]
                assert all(r["state"] == "pending" for r in replies)
        assert len(service.pending()) == count
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Teardown: disconnect mid-stream leaks nothing, resolutions continue
# ---------------------------------------------------------------------------
def test_client_disconnect_mid_stream_leaks_nothing():
    service = _service()
    try:
        with Gateway(service) as gateway:
            host, port = gateway.address
            client = GatewayClient(host, port)
            reply = client.submit(partner_query(member_name(3), [member_name(4)]))
            assert reply["state"] == "pending"
            # Abrupt disconnect: no shutdown op, no protocol goodbye —
            # the socket just dies with a resolution still owed.
            client._conn._sock.close()
            _wait_connections(gateway, 0)

            # The submission is a service-side fact: a second client
            # completes the pair and both resolve.
            with GatewayClient(host, port) as other:
                other.submit(partner_query(member_name(4), [member_name(3)]))
                record = other.wait_resolved(member_name(4), DEADLINE)
                assert record["state"] == "satisfied"
                assert other.status(member_name(3)) == "satisfied"
    finally:
        service.close()


def test_shutdown_op_is_gated_and_acknowledged():
    service = _service()
    try:
        gateway = Gateway(service)
        with gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                with pytest.raises(PreconditionError):
                    client.shutdown()

        enabled = Gateway(service, allow_shutdown=True)
        enabled.start()
        host, port = enabled.address
        try:
            with GatewayClient(host, port) as client:
                client.shutdown()  # raises unless the ack was flushed
            assert enabled.wait(DEADLINE)
        finally:
            enabled.close()
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Control lane: probes answered mid-frame on every executor
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_probes_answered_while_workers_grind(executor):
    db = members_database(size=DB_SIZE, seed=2012)
    service = ShardedCoordinationService(
        db, workers=2, executor=executor, mailbox_capacity=64
    )
    try:
        # One long multi-component frame per shard (the batch admission
        # path posts a single evaluate job covering the group).
        service.submit_many_nowait(
            [_stalled_join(member_name(100 + n)) for n in range(32)]
        )
        # The probes must come back while those frames are still
        # outstanding — the blocking path would park them until the
        # frames complete, and this assertion would observe zero
        # outstanding evaluations instead.
        probed = service.probe(0)
        status = service.status(member_name(100))
        with service._tables:
            outstanding = service._eval_outstanding
        assert outstanding > 0, (
            "evaluate frames finished before the probe returned — the "
            "control lane was not exercised (grow the burst?)"
        )
        assert isinstance(probed, tuple)
        assert status is not None
        service.drain()
    finally:
        service.close()


# ---------------------------------------------------------------------------
# CallbackDispatcher: deferred errors re-raise deterministically
# ---------------------------------------------------------------------------
def test_dispatcher_drain_reraises_single_error_as_itself():
    dispatcher = CallbackDispatcher()
    try:
        dispatcher.post(lambda: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(ValueError, match="boom"):
            dispatcher.drain(DEADLINE, raise_errors=True)
        # The error was *taken*: a second drain has nothing to raise.
        assert dispatcher.drain(DEADLINE, raise_errors=True)
    finally:
        dispatcher.stop(DEADLINE)


def test_dispatcher_drain_groups_multiple_errors_in_order():
    dispatcher = CallbackDispatcher()
    try:
        def fail(message):
            raise ValueError(message)

        dispatcher.post(lambda: fail("first"))
        dispatcher.post(lambda: fail("second"))
        with pytest.raises(ExceptionGroup) as caught:
            dispatcher.drain(DEADLINE, raise_errors=True)
        assert [str(e) for e in caught.value.exceptions] == ["first", "second"]
    finally:
        dispatcher.stop(DEADLINE)


def test_dispatcher_close_reraises_pending_errors():
    dispatcher = CallbackDispatcher()
    dispatcher.post(lambda: (_ for _ in ()).throw(RuntimeError("lost?")))
    dispatcher.drain(DEADLINE)
    with pytest.raises(RuntimeError, match="lost"):
        dispatcher.close(DEADLINE)
