"""Replica-staleness fuzz: both storage backends, byte for byte.

The replicated backend's claim is that lazily-synced per-shard replicas
are *unobservable*: a service evaluating against private replicas with
versioned invalidation must resolve every handle exactly as the
shared-store service — and as a single engine — does, even when
``insert`` writes interleave with concurrent (overlapped, worker-mode)
evaluations.  This fuzz drives one deterministic randomized op stream —
``submit_nowait`` bursts whose evaluations stay in flight, inserts that
un-stall previously row-less components, retractions, flush-drains,
drains — through a shared-backend and a replicated-backend service with
identical seeds, then asserts:

* the linearization journals are identical (same ops, same raise
  verdicts — the stream is driven single-threaded, so any divergence is
  a semantics difference, not scheduling);
* every submitted handle resolved to the identical state, satisfied
  set, and chosen assignment (the byte-identical check);
* resolution multisets, final pending sets, and database contents
  match, and the journal replays into a single-engine oracle to the
  same outcome for both.
"""

import random
from collections import Counter

import pytest

from repro.core import ShardedCoordinationService
from repro.errors import PreconditionError
from repro.networks import member_name
from repro.workloads import members_database, partner_query

from service_testing import assert_invariants, chosen_bytes, replay_into_oracle

DB_SIZE = 20
DRAIN_TIMEOUT = 60.0
#: Users beyond the prefilled table: queries on them stall until an
#: interleaved insert supplies their Members row.
ABSENT_BASE = 100
ABSENT_SPAN = 30


def _stream_driver(service, seed, ops=120):
    """Drive one deterministic randomized op stream; return observables."""
    rng = random.Random(seed)
    submitted = []  # (query, handle) in submission order
    resolutions = Counter()

    @service.on_resolved
    def _collect(handle):
        resolutions[
            (handle.query, handle.state.value, tuple(handle.satisfied_with))
        ] += 1

    for _ in range(ops):
        roll = rng.random()
        try:
            if roll < 0.35:
                name = member_name(rng.randrange(40))
                partners = [
                    member_name(p)
                    for p in rng.sample(range(40), k=rng.choice((0, 1, 2)))
                ]
                query = partner_query(name, partners)
                submitted.append((query, service.submit_nowait(query)))
            elif roll < 0.50:
                # A self-partnered query on a user whose Members row does
                # not exist yet: its evaluation runs (and fails) against
                # the current snapshot; only a later insert + flush can
                # coordinate it — the staleness-sensitive path.
                name = member_name(ABSENT_BASE + rng.randrange(ABSENT_SPAN))
                query = partner_query(name, [name])
                submitted.append((query, service.submit_nowait(query)))
            elif roll < 0.65:
                name = member_name(ABSENT_BASE + rng.randrange(ABSENT_SPAN))
                service.insert("Members", (name, "region-f", "interest-f", 1))
            elif roll < 0.75 and submitted:
                service.retract(rng.choice(submitted)[0].name)
            elif roll < 0.90:
                service.flush_drain()
            else:
                assert service.drain(timeout=DRAIN_TIMEOUT)
        except PreconditionError:
            pass  # journaled; both backends must raise identically
    assert service.drain(timeout=DRAIN_TIMEOUT)
    assert_invariants(service)
    return submitted, resolutions


def _handle_bytes(handle):
    """A fully comparable rendering of one resolved (or pending) handle."""
    return (
        handle.query,
        handle.state.value,
        tuple(handle.satisfied_with),
        chosen_bytes(handle.result) if handle.satisfied else None,
    )


def _oracle_outcome(journal, db):
    """Replay a journal into the shared single-engine oracle; return
    the comparables this suite diffs against the services."""
    engine, resolutions, _ = replay_into_oracle(journal, db)
    return tuple(sorted(engine.pending())), resolutions, engine.db.sizes()


@pytest.mark.parametrize("seed", range(4))
def test_interleaved_inserts_are_byte_identical_across_backends(seed):
    outcomes = {}
    for backend in ("shared", "replicated"):
        db = members_database(size=DB_SIZE, seed=2012)
        with ShardedCoordinationService(
            db, workers=3, backend=backend
        ) as service:
            assert service.backend_name == backend
            service.journal = []
            submitted, resolutions = _stream_driver(service, 4000 + seed)
            outcomes[backend] = {
                "journal": list(service.journal),
                "handles": [_handle_bytes(h) for _, h in submitted],
                "resolutions": resolutions,
                "pending": tuple(sorted(service.pending())),
                "sizes": db.sizes(),
            }
        if backend == "replicated":
            # The fuzz must actually exercise the sync path: every
            # replica synced at least once, and the interleaved inserts
            # forced re-syncs beyond the initial prime.
            stats = service.backend.replica_stats()
            assert all(r["syncs"] >= 1 for r in stats)
            assert sum(r["syncs"] for r in stats) > len(stats)

    shared, replicated = outcomes["shared"], outcomes["replicated"]
    assert shared["journal"] == replicated["journal"]
    assert shared["handles"] == replicated["handles"]
    assert shared["resolutions"] == replicated["resolutions"]
    assert shared["pending"] == replicated["pending"]
    assert shared["sizes"] == replicated["sizes"]

    # Both journals (equal, so replay one) linearize to the single-engine
    # outcome as well: replicas are unobservable even through the oracle.
    oracle_pending, oracle_resolutions, oracle_sizes = _oracle_outcome(
        shared["journal"], members_database(size=DB_SIZE, seed=2012)
    )
    assert oracle_pending == shared["pending"]
    assert oracle_resolutions == shared["resolutions"]
    assert oracle_sizes == shared["sizes"]
