"""Byte-identity of every catalog scenario across service configs.

The scenario catalog's contract (DESIGN.md §14): a scenario stream's
observables — which queries resolved, with whom, what stayed pending,
and the final database contents — are identical whatever the service's
shard count, storage backend, or executor.  This suite drives each
scenario through the config matrix the acceptance criteria name
(``backend=shared|replicated`` × ``executor=thread|process``) plus a
single-engine oracle replay, and compares everything.

The marketplace fuzz at the bottom is the retract/delete-heavy
tombstone exercise: every ``delete`` writes a tombstone the replicated
backend's sync must replay, and the stream's churn keeps that path hot
rather than touched once.
"""

import random
from collections import Counter

import pytest

from repro.core import QueryState, ServiceConfig, ShardedCoordinationService
from repro.scenarios import SCENARIOS, drive, get_scenario
from repro.workloads import marketplace_events

from service_testing import replay_into_oracle

DRAIN_TIMEOUT = 60.0

#: Scales tuned so the slowest entry (process executor spawn) stays in
#: low single-digit seconds while every lifecycle path still fires.
SMOKE_SCALE = {
    "partner": 48,
    "keyword": 24,
    "marketplace": 96,
    "adversarial": 16,
}

CONFIGS = [
    ("serial-shared", ServiceConfig(shards=4, backend="shared")),
    ("serial-replicated", ServiceConfig(shards=4, backend="replicated")),
    (
        "workers-replicated",
        ServiceConfig(shards=4, workers=2, backend="replicated"),
    ),
    (
        "process",
        ServiceConfig(shards=2, workers=2, executor="process"),
    ),
]


def journal_from_events(events):
    """Catalog events in the oracle replayer's journal vocabulary."""
    journal = []
    for event in events:
        kind = event[0]
        if kind == "submit":
            journal.append(("submit", event[1], None))
        elif kind == "retract":
            journal.append(("retract", event[1], None))
        else:
            journal.append(event)
    return journal


def observables(db, events, config):
    """Run the stream under ``config``; return comparable outcomes."""
    service = ShardedCoordinationService(db, config)
    resolutions = Counter()

    def _collect(handle):
        if handle.state is QueryState.SATISFIED:
            resolutions[
                (handle.query, tuple(sorted(handle.satisfied_with)))
            ] += 1

    service.on_resolved(_collect)
    try:
        run = drive(service, events)
        assert service.drain(timeout=DRAIN_TIMEOUT)
        pending = tuple(sorted(service.pending()))
    finally:
        service.close()
    rows = {
        relation: sorted(db.rows(relation))
        for relation in db.schema.names()
    }
    return resolutions, pending, run.rejected, rows


def oracle_observables(db, events):
    """The single-engine ground truth for the same stream."""
    engine, resolutions, _ = replay_into_oracle(
        journal_from_events(events), db
    )
    satisfied = Counter()
    for (name, state, members), count in resolutions.items():
        if state == QueryState.SATISFIED.value:
            satisfied[(name, tuple(sorted(members)))] += count
    pending = tuple(sorted(engine.pending()))
    rows = {
        relation: sorted(engine.db.rows(relation))
        for relation in engine.db.schema.names()
    }
    return satisfied, pending, rows


@pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
def test_scenario_is_byte_identical_across_configs(name):
    scenario = get_scenario(name)
    scale = SMOKE_SCALE[name]
    oracle_db, events = scenario.build(scale, 2012)
    want_resolutions, want_pending, want_rows = oracle_observables(
        oracle_db, events
    )
    for label, config in CONFIGS:
        db, config_events = scenario.build(scale, 2012)
        resolutions, pending, _, rows = observables(
            db, config_events, config
        )
        assert resolutions == want_resolutions, label
        assert pending == want_pending, label
        assert rows == want_rows, label


@pytest.mark.parametrize("seed", range(3))
def test_marketplace_tombstone_fuzz_on_replicated_backend(seed):
    """Retract/delete-heavy streams keep replica tombstone sync hot."""
    rng = random.Random(seed)
    requests = 150 + rng.randrange(100)
    oracle_db, events = marketplace_events(requests, seed=seed * 7 + 1)
    deletes = sum(1 for e in events if e[0] == "delete")
    retracts = sum(1 for e in events if e[0] == "retract")
    assert deletes >= 20 and retracts >= 20  # the point of the fuzz
    want_resolutions, want_pending, want_rows = oracle_observables(
        oracle_db, events
    )
    db, config_events = marketplace_events(requests, seed=seed * 7 + 1)
    resolutions, pending, _, rows = observables(
        db,
        config_events,
        ServiceConfig(shards=4, workers=2, backend="replicated"),
    )
    assert resolutions == want_resolutions
    assert pending == want_pending == ()
    assert rows == want_rows
