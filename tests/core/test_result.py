"""Unit tests for result types (CoordinatingSet & friends)."""

from repro.core import CoordinatingSet, CoordinationResult, GroundedView
from repro.db import CoordinationStats
from repro.logic import GroundAtom, Variable


def _sample_set():
    return CoordinatingSet(
        members=("q1", "q2"),
        assignment={
            Variable("x", "q1"): 101,
            Variable("y", "q2"): 101,
        },
    )


class TestCoordinatingSet:
    def test_size_and_membership(self):
        cs = _sample_set()
        assert cs.size == 2
        assert len(cs) == 2
        assert "q1" in cs and "zzz" not in cs
        assert cs.member_set() == frozenset({"q1", "q2"})

    def test_value_of_uses_namespaces(self):
        cs = _sample_set()
        assert cs.value_of("q1", "x") == 101
        assert cs.value_of("q2", "y") == 101

    def test_str_sorted(self):
        cs = CoordinatingSet(("b", "a"), {})
        assert str(cs) == "{a, b}"


class TestCoordinationResult:
    def test_found_flag(self):
        empty = CoordinationResult(None)
        assert not empty.found
        assert empty.sizes() == []
        full = CoordinationResult(_sample_set(), [_sample_set()])
        assert full.found
        assert full.sizes() == [2]

    def test_default_stats(self):
        result = CoordinationResult(None)
        assert isinstance(result.stats, CoordinationStats)
        assert result.stats.db_queries == 0


class TestGroundedView:
    def test_satisfied(self):
        view = GroundedView(
            postconditions=(GroundAtom("R", (1,)),),
            heads=(GroundAtom("R", (1,)), GroundAtom("Q", (2,))),
        )
        assert view.satisfied()

    def test_unsatisfied(self):
        view = GroundedView(
            postconditions=(GroundAtom("R", (1,)),),
            heads=(GroundAtom("R", (2,)),),
        )
        assert not view.satisfied()

    def test_empty_postconditions_vacuous(self):
        assert GroundedView((), ()).satisfied()


class TestCoordinationStats:
    def test_as_dict_includes_extra(self):
        stats = CoordinationStats(db_queries=3)
        stats.extra["custom"] = 7
        data = stats.as_dict()
        assert data["db_queries"] == 3
        assert data["custom"] == 7
