"""Unit tests for the EntangledQuery type."""

import pytest

from repro.core import EntangledQuery, check_distinct_names, validate_query_set
from repro.db import Schema
from repro.errors import MalformedQueryError
from repro.logic import Atom, var


def _gwyneth() -> EntangledQuery:
    return EntangledQuery(
        "q1",
        postconditions=[Atom("R", ["Chris", var("x")])],
        head=[Atom("R", ["Gwyneth", var("x")])],
        body=[Atom("Flights", [var("x"), "Zurich"])],
    )


class TestConstruction:
    def test_basic_structure(self):
        q = _gwyneth()
        assert q.name == "q1"
        assert len(q.postconditions) == 1
        assert len(q.head) == 1
        assert len(q.body) == 1

    def test_requires_name(self):
        with pytest.raises(MalformedQueryError):
            EntangledQuery("", head=[Atom("R", [1])])

    def test_requires_some_atom(self):
        with pytest.raises(MalformedQueryError):
            EntangledQuery("q")

    def test_empty_head_allowed(self):
        # Theorem 1's xi-False query can have an empty head.
        q = EntangledQuery("q", postconditions=[Atom("R", [1])])
        assert q.head == ()

    def test_answer_and_body_relations(self):
        q = _gwyneth()
        assert q.answer_relations() == {"R"}
        assert q.body_relations() == {"Flights"}

    def test_variables(self):
        q = _gwyneth()
        assert q.variables() == frozenset({var("x")})

    def test_free_variables(self):
        q = EntangledQuery(
            "q",
            head=[Atom("R", [var("x"), var("free")])],
            body=[Atom("T", [var("x")])],
        )
        assert q.free_variables() == frozenset({var("free")})

    def test_str_empty_body_shows_empty_set(self):
        q = EntangledQuery("q", head=[Atom("C", [1])])
        assert "∅" in str(q)


class TestValidation:
    def test_valid_against_schema(self):
        schema = Schema().relation("Flights", ["id", "dest"])
        _gwyneth().validate(schema)

    def test_body_relation_must_exist(self):
        schema = Schema().relation("Other", ["a"])
        with pytest.raises(MalformedQueryError):
            _gwyneth().validate(schema)

    def test_answer_relation_must_not_collide(self):
        schema = Schema().relation("Flights", ["id", "dest"]).relation("R", ["a", "b"])
        with pytest.raises(MalformedQueryError):
            _gwyneth().validate(schema)

    def test_duplicate_names_rejected(self):
        q = _gwyneth()
        with pytest.raises(MalformedQueryError):
            check_distinct_names([q, q])

    def test_validate_query_set(self):
        schema = Schema().relation("Flights", ["id", "dest"])
        queries = validate_query_set([_gwyneth()], schema)
        assert len(queries) == 1


class TestStandardization:
    def test_standardized_namespaces_all_parts(self):
        std = _gwyneth().standardized()
        for atom_list in (std.postconditions, std.head, std.body):
            for atom in atom_list:
                for variable in atom.variables():
                    assert variable.namespace == "q1"

    def test_standardized_custom_namespace(self):
        std = _gwyneth().standardized("ns")
        assert all(v.namespace == "ns" for v in std.variables())

    def test_shared_variable_stays_shared(self):
        std = _gwyneth().standardized()
        # x appears in postcondition, head and body: all become q1.x.
        assert std.variables() == frozenset({var("x", "q1")})

    def test_original_untouched(self):
        q = _gwyneth()
        q.standardized()
        assert q.variables() == frozenset({var("x")})
