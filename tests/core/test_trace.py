"""Unit tests for execution tracing (the paper-style narration)."""

from repro.core import (
    ComponentProcessed,
    PreprocessingRemoved,
    SelectionMade,
    Trace,
    ValueExamined,
    consistent_coordinate,
    parse_queries,
    render_trace,
    scc_coordinate,
)
from repro.core.consistent import ConsistentCoordinator
from repro.db import DatabaseBuilder
from repro.workloads import (
    movies_database,
    movies_queries,
    movies_setup,
    vacation_database,
    vacation_queries,
)


class TestSccTrace:
    def test_vacation_walkthrough(self):
        trace = Trace()
        result = scc_coordinate(
            vacation_database(), vacation_queries(), trace=trace
        )
        assert result.found
        components = trace.of_type(ComponentProcessed)
        # Three components processed: {qC,qG} ok, qJ db-failed,
        # qW successor-failed — in reverse topological order.
        statuses = {tuple(sorted(e.members)): e.status for e in components}
        assert statuses[("qC", "qG")] == "ok"
        assert statuses[("qJ",)] == "db-failed"
        assert statuses[("qW",)] == "successor-failed"
        # First processed component has no unprocessed successors.
        assert components[0].members in (("qC", "qG"), ("qG", "qC"))

    def test_preprocessing_event(self):
        db = (
            DatabaseBuilder()
            .table("T", ["v"])
            .rows("T", [(1,)])
            .build()
        )
        queries = parse_queries(
            "a: {Gone(x)} Q(x) :- T(x); b: {} P(y) :- T(y)"
        )
        trace = Trace()
        scc_coordinate(db, queries, trace=trace)
        removed = trace.of_type(PreprocessingRemoved)
        assert len(removed) == 1
        assert removed[0].removed == ("a",)

    def test_selection_event_present(self):
        trace = Trace()
        scc_coordinate(vacation_database(), vacation_queries(), trace=trace)
        selections = trace.of_type(SelectionMade)
        assert len(selections) == 1
        assert "size 2" in selections[0].description

    def test_render_mentions_components(self):
        trace = Trace()
        scc_coordinate(vacation_database(), vacation_queries(), trace=trace)
        text = render_trace(trace)
        assert "qJ" in text and "unsatisfiable" in text
        assert "skipped" in text  # qW

    def test_no_trace_by_default(self):
        # Tracing must stay strictly opt-in.
        result = scc_coordinate(vacation_database(), vacation_queries())
        assert result.found


class TestConsistentTrace:
    def test_movies_narration(self):
        trace = Trace()
        coordinator = ConsistentCoordinator(movies_database(), movies_setup())
        result = coordinator.coordinate(movies_queries(), trace=trace)
        assert result.found
        values = {e.value: e for e in trace.of_type(ValueExamined)}
        # Cinemark: Will removed (no friend), then Jonny.
        cinemark = values[("Cinemark",)]
        assert cinemark.surviving_users == ()
        removed_order = [user for user, _ in cinemark.removals]
        assert set(removed_order) == {"Jonny", "Will"}
        # Regal survives with the paper's set.
        regal = values[("Regal",)]
        assert set(regal.surviving_users) == {"Chris", "Jonny", "Will"}
        # Guy was never in G_Regal (V(qg) = {AMC}), so nothing is removed.
        assert regal.removals == ()
        assert set(regal.initial_users) == {"Chris", "Jonny", "Will"}

    def test_removal_reasons_are_textual(self):
        trace = Trace()
        coordinator = ConsistentCoordinator(movies_database(), movies_setup())
        coordinator.coordinate(movies_queries(), trace=trace)
        for event in trace.of_type(ValueExamined):
            for _, reason in event.removals:
                assert isinstance(reason, str) and reason

    def test_render_trace_text(self):
        trace = Trace()
        coordinator = ConsistentCoordinator(movies_database(), movies_setup())
        coordinator.coordinate(movies_queries(), trace=trace)
        text = render_trace(trace, title="movies")
        assert text.startswith("movies")
        assert "Cinemark" in text
        assert "cleaned to ∅" in text
        assert "selection" in text


class TestTraceContainer:
    def test_of_type_filters(self):
        trace = Trace()
        trace.add(SelectionMade("x"))
        trace.add(PreprocessingRemoved(("a",)))
        assert len(trace.of_type(SelectionMade)) == 1
        assert len(trace) == 2

    def test_describe_variants(self):
        assert "nothing" in PreprocessingRemoved(()).describe()
        event = ComponentProcessed(0, ("a",), ("a", "b"), "ok", 1)
        assert "candidate recorded" in event.describe()
