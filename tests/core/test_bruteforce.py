"""Unit tests for the exact (oracle) solvers."""

import pytest

from repro.core import (
    coordinating_set_exists,
    enumerate_coordinating_sets,
    find_coordinating_set,
    find_maximum_coordinating_set,
    parse_queries,
    verify_result_set,
)
from repro.db import DatabaseBuilder, unary_boolean_database
from repro.workloads import vacation_database, vacation_queries


@pytest.fixture
def zurich_db():
    return (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich")])
        .build()
    )


class TestFindCoordinatingSet:
    def test_finds_minimal_witness(self, zurich_db):
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        found = find_coordinating_set(zurich_db, queries)
        assert found is not None
        assert found.member_set() == {"q2"}  # minimal
        assert verify_result_set(zurich_db, queries, found).ok

    def test_no_set_when_body_unsatisfiable(self, zurich_db):
        queries = parse_queries("q: {} R(x) :- Flights(x, 'Mars')")
        assert find_coordinating_set(zurich_db, queries) is None
        assert not coordinating_set_exists(zurich_db, queries)

    def test_no_set_when_postcondition_unmatched(self, zurich_db):
        queries = parse_queries("q: {Gone(1)} R(x) :- Flights(x, 'Zurich')")
        assert find_coordinating_set(zurich_db, queries) is None

    def test_mutual_dependency(self, zurich_db):
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Flights(x, 'Zurich');
            b: {Q(y)} P(y) :- Flights(y, 'Zurich');
            """
        )
        found = find_coordinating_set(zurich_db, queries)
        assert found is not None
        assert found.member_set() == {"a", "b"}
        assert verify_result_set(zurich_db, queries, found).ok

    def test_unification_infeasible(self, zurich_db):
        # a needs P grounded at a Zurich flight; b provides P only at a
        # Paris flight — no Paris flights exist.
        queries = parse_queries(
            """
            a: {P(x)} Q(x) :- Flights(x, 'Zurich');
            b: {Q(y)} P(y) :- Flights(y, 'Paris');
            """
        )
        assert find_coordinating_set(zurich_db, queries) is None

    def test_free_variable_gets_domain_value(self, zurich_db):
        queries = parse_queries("q: {} R(free) :- ∅")
        found = find_coordinating_set(zurich_db, queries)
        assert found is not None
        assert verify_result_set(zurich_db, queries, found).ok

    def test_vacation_example(self):
        db = vacation_database()
        queries = vacation_queries()
        found = find_coordinating_set(db, queries)
        assert found is not None
        assert verify_result_set(db, queries, found).ok
        maximum = find_maximum_coordinating_set(db, queries)
        assert maximum is not None
        # qJ's contradiction caps the maximum at {qC, qG}.
        assert maximum.member_set() == {"qC", "qG"}


class TestEnumeration:
    def test_enumerates_by_size(self, zurich_db):
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        sets = list(enumerate_coordinating_sets(zurich_db, queries))
        sizes = [s.size for s in sets]
        assert sizes == sorted(sizes)
        members = {s.member_set() for s in sets}
        assert frozenset({"q2"}) in members
        assert frozenset({"q1", "q2"}) in members
        for s in sets:
            assert verify_result_set(zurich_db, queries, s).ok

    def test_max_size_parameter(self, zurich_db):
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        sets = list(enumerate_coordinating_sets(zurich_db, queries, max_size=1))
        assert all(s.size == 1 for s in sets)


class TestMaximum:
    def test_maximum_beats_minimal(self, zurich_db):
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        maximum = find_maximum_coordinating_set(zurich_db, queries)
        assert maximum is not None
        assert maximum.member_set() == {"q1", "q2"}

    def test_choose_one_grounding_shared(self):
        # Two Zurich flights: Gwyneth and Chris must pick the SAME one.
        db = (
            DatabaseBuilder()
            .table("Flights", ["flightId", "destination"], key="flightId")
            .rows("Flights", [(101, "Zurich"), (102, "Zurich")])
            .build()
        )
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        maximum = find_maximum_coordinating_set(db, queries)
        assert maximum is not None
        assert maximum.value_of("q1", "x") == maximum.value_of("q2", "y")

    def test_unary_database_instance(self):
        db = unary_boolean_database()
        queries = parse_queries(
            """
            a: {B(1)} A(x) :- D(x);
            b: {} B(y) :- D(y);
            """
        )
        maximum = find_maximum_coordinating_set(db, queries)
        assert maximum is not None
        assert maximum.member_set() == {"a", "b"}
        # a's postcondition B(1) forces b's grounding to 1.
        assert maximum.value_of("b", "y") == 1
