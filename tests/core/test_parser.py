"""Unit tests for the entangled-query text syntax."""

import pytest

from repro.core import parse_queries, parse_query
from repro.errors import ParseError
from repro.logic import Constant, Variable


class TestTerms:
    def test_lowercase_is_variable(self):
        q = parse_query("{} R(x) :- T(x)")
        assert q.head[0].terms[0] == Variable("x")

    def test_uppercase_is_constant(self):
        q = parse_query("{} R(Chris) :- ∅")
        assert q.head[0].terms[0] == Constant("Chris")

    def test_integers_are_constants(self):
        q = parse_query("{} R(42) :- ∅")
        assert q.head[0].terms[0] == Constant(42)

    def test_negative_integer(self):
        q = parse_query("{} R(-3) :- ∅")
        assert q.head[0].terms[0] == Constant(-3)

    def test_quoted_strings_are_constants(self):
        q = parse_query("{} R('zurich airport') :- ∅")
        assert q.head[0].terms[0] == Constant("zurich airport")

    def test_double_quotes(self):
        q = parse_query('{} R("Zurich") :- ∅')
        assert q.head[0].terms[0] == Constant("Zurich")

    def test_underscore_starts_variable(self):
        q = parse_query("{} R(_tmp) :- ∅")
        assert q.head[0].terms[0] == Variable("_tmp")


class TestQueryStructure:
    def test_paper_example(self):
        q = parse_query("{R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich')")
        assert q.postconditions[0].relation == "R"
        assert q.postconditions[0].terms == (Constant("Chris"), Variable("x"))
        assert q.head[0].terms == (Constant("Gwyneth"), Variable("x"))
        assert q.body[0].relation == "Flights"

    def test_empty_postconditions(self):
        q = parse_query("{} R(Chris, y) :- Flights(y, 'Zurich')")
        assert q.postconditions == ()

    def test_empty_body_unicode(self):
        q = parse_query("{C(1)} R(x) :- ∅")
        assert q.body == ()

    def test_empty_body_keyword(self):
        q = parse_query("{C(1)} R(x) :- empty")
        assert q.body == ()

    def test_empty_body_nothing(self):
        q = parse_query("{C(1)} R(x) :-")
        assert q.body == ()

    def test_multiple_heads(self):
        q = parse_query("{} R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x)")
        assert len(q.head) == 2
        assert len(q.body) == 2

    def test_empty_head(self):
        q = parse_query("{R(1)} :- ∅")
        assert q.head == ()

    def test_named_query(self):
        q = parse_query("qC: {} R(C, x) :- F(x)")
        assert q.name == "qC"

    def test_default_name(self):
        q = parse_query("{} R(x) :- T(x)", name="custom")
        assert q.name == "custom"

    def test_nullary_atom(self):
        q = parse_query("{} Flag() :- ∅")
        assert q.head[0].arity == 0


class TestPrograms:
    def test_multiple_queries(self):
        queries = parse_queries(
            """
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
            q2: {} R(Chris, y) :- Flights(y, 'Zurich');
            """
        )
        assert [q.name for q in queries] == ["q1", "q2"]

    def test_unnamed_queries_numbered(self):
        queries = parse_queries("{} R(x) :- T(x); {} S(y) :- T(y)")
        assert [q.name for q in queries] == ["q0", "q1"]

    def test_empty_program(self):
        assert parse_queries("") == []


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_query("{} R('oops) :- ∅")

    def test_missing_entails(self):
        with pytest.raises(ParseError):
            parse_query("{} R(x) T(x)")

    def test_missing_brace(self):
        with pytest.raises(ParseError):
            parse_query("R(x)} S(x) :- T(x)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("{} R(x) :- T(x) garbage(")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("{} R(x) :- T(x) @")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_query("{} R(x :- T(x)")


class TestRoundTrip:
    def test_str_of_parsed_query_reparses(self):
        source = "{R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich')"
        q = parse_query(source)
        again = parse_query(str(q))
        assert again.postconditions == q.postconditions
        assert again.head == q.head
        assert again.body == q.body
