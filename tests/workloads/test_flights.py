"""Unit tests for the flight workloads (Figures 7 and 8)."""

from repro.core import consistent_coordinate
from repro.workloads import (
    flight_setup,
    realistic_flight_workload,
    unique_flights_rows,
    user_name,
    worst_case_database,
    worst_case_queries,
)


class TestWorstCase:
    def test_unique_rows_have_unique_coordination_values(self):
        rows = unique_flights_rows(50)
        pairs = {(r[1], r[2]) for r in rows}
        assert len(pairs) == 50

    def test_database_shapes(self):
        db = worst_case_database(num_flights=30, num_users=5)
        assert db.sizes()["Flights"] == 30
        assert db.sizes()["Friends"] == 5 * 4  # complete digraph

    def test_every_value_is_a_candidate(self):
        db = worst_case_database(num_flights=20, num_users=4)
        queries = worst_case_queries(4)
        result = consistent_coordinate(db, flight_setup(), queries)
        # Worst case by construction: candidate values = table size.
        assert result.stats.candidate_values == 20

    def test_nothing_pruned_everyone_coordinates(self):
        db = worst_case_database(num_flights=10, num_users=6)
        queries = worst_case_queries(6)
        result = consistent_coordinate(db, flight_setup(), queries)
        assert result.found
        assert set(result.chosen.users) == {user_name(i) for i in range(6)}
        # Every candidate keeps all users (complete friendships).
        assert all(c.size == 6 for c in result.candidates)

    def test_db_queries_linear_in_users(self):
        setup = flight_setup()
        for n in (4, 8):
            db = worst_case_database(num_flights=10, num_users=n)
            result = consistent_coordinate(db, setup, worst_case_queries(n))
            assert result.stats.db_queries <= 3 * n


class TestRealisticWorkload:
    def test_generation_is_deterministic(self):
        db1, q1 = realistic_flight_workload(num_users=10, seed=5)
        db2, q2 = realistic_flight_workload(num_users=10, seed=5)
        assert db1.rows("Flights") == db2.rows("Flights")
        assert [str(q) for q in q1] == [str(q) for q in q2]

    def test_runs_end_to_end(self):
        db, queries = realistic_flight_workload(num_users=12, seed=5)
        result = consistent_coordinate(db, flight_setup(), queries)
        # A coordinating set usually exists; at minimum the run is
        # well-formed and all candidates respect the friendship rules.
        for candidate in result.candidates:
            assert candidate.users
        if result.found:
            db_rows = {row[0]: row for row in db.rows("Flights")}
            for user, key in result.chosen.selections.items():
                row = db_rows[key]
                assert (row[1], row[2]) == result.chosen.value

    def test_constraints_respected_in_outcome(self):
        db, queries = realistic_flight_workload(num_users=15, seed=11)
        result = consistent_coordinate(db, flight_setup(), queries)
        if not result.found:
            return
        constraints = {q.user: q.constraint_map() for q in queries}
        db_rows = {row[0]: row for row in db.rows("Flights")}
        attrs = ("flightId", "destination", "day", "source", "airline")
        for user, key in result.chosen.selections.items():
            row = dict(zip(attrs, db_rows[key]))
            for attribute, value in constraints[user].items():
                assert row[attribute] == value, (user, attribute)
