"""Unit tests for the movies workload definition."""

from repro.workloads import (
    CINEMAS,
    FRIENDSHIPS,
    movies_database,
    movies_queries,
    movies_setup,
)


class TestDatabase:
    def test_hugo_plays_at_three_cinemas(self):
        db = movies_database()
        cinemas = {row[1] for row in db.rows("M") if row[2] == "Hugo"}
        assert cinemas == set(CINEMAS)

    def test_contagion_only_at_regal(self):
        db = movies_database()
        cinemas = {row[1] for row in db.rows("M") if row[2] == "Contagion"}
        assert cinemas == {"Regal"}

    def test_friendships_match_paper(self):
        db = movies_database()
        assert db.contains("C", ("Chris", "Jonny"))
        assert db.contains("C", ("Jonny", "Will"))
        assert not db.contains("C", ("Jonny", "Guy"))
        assert not db.contains("C", ("Chris", "Will"))

    def test_friendship_list_is_the_papers(self):
        by_user = {}
        for user, friend in FRIENDSHIPS:
            by_user.setdefault(user, set()).add(friend)
        assert by_user == {
            "Chris": {"Jonny", "Guy"},
            "Guy": {"Chris", "Jonny"},
            "Jonny": {"Chris", "Will"},
            "Will": {"Chris", "Guy"},
        }


class TestQueries:
    def test_four_queries_one_per_member(self):
        queries = movies_queries()
        assert [q.user for q in queries] == ["Chris", "Guy", "Jonny", "Will"]

    def test_chris_names_will(self):
        chris = movies_queries()[0]
        partners = chris.named_partners()
        assert len(partners) == 1 and partners[0].user == "Will"

    def test_setup_coordinates_on_cinema(self):
        setup = movies_setup()
        assert setup.coordination_attributes == ("cinema",)
        assert setup.table == "M"
