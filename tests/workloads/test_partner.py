"""Unit tests for the partner-coordination workloads (Figures 4–6)."""

from repro.core import (
    CoordinationGraph,
    is_safe,
    is_unique,
    scc_coordinate,
    verify_result_set,
)
from repro.networks import list_digraph, member_name
from repro.workloads import (
    list_workload,
    partner_query,
    queries_from_structure,
    scale_free_workload,
    shared_venue_workload,
    venues_database,
)


class TestPartnerQuery:
    def test_shape(self):
        q = partner_query("user00001", ["user00002", "user00003"])
        assert len(q.postconditions) == 2
        assert len(q.head) == 1
        assert len(q.body) == 1
        assert q.name == "user00001"

    def test_partner_constants_in_postconditions(self):
        q = partner_query("a", ["b"])
        assert q.postconditions[0].terms[1].value == "b"

    def test_no_partners(self):
        q = partner_query("a", [])
        assert q.postconditions == ()


class TestStructures:
    def test_list_workload_graph_is_chain(self):
        queries = list_workload(5)
        graph = CoordinationGraph.build(queries)
        for i in range(4):
            assert graph.graph.successors(member_name(i)) == {member_name(i + 1)}
        assert graph.graph.successors(member_name(4)) == set()

    def test_list_workload_safe_not_unique(self):
        queries = list_workload(6)
        graph = CoordinationGraph.build(queries)
        assert is_safe(queries)
        assert not is_unique(graph)

    def test_scale_free_workload_safe(self):
        queries = scale_free_workload(25, seed=3)
        assert is_safe(queries)

    def test_custom_users(self):
        structure = list_digraph(3)
        queries = queries_from_structure(structure, users=["a", "b", "c"])
        assert [q.name for q in queries] == ["a", "b", "c"]

    def test_all_bodies_satisfiable(self, small_members_db):
        # The paper's "most demanding scenario": every body satisfiable.
        queries = list_workload(20)
        result = scc_coordinate(small_members_db, queries)
        assert result.stats.preprocessing_removed == 0
        assert result.found
        assert result.chosen.size == 20


class TestSharedVenue:
    def test_chain_forces_common_venue(self):
        db = venues_database(venues=5)
        queries = shared_venue_workload(list_digraph(4))
        assert is_safe(queries)
        result = scc_coordinate(db, queries)
        assert result.found
        assert result.chosen.size == 4
        values = {
            result.chosen.value_of(q.name, "x") for q in queries
        }
        assert len(values) == 1  # everyone at the same venue
        assert verify_result_set(db, queries, result.chosen).ok

    def test_conflicting_venue_pins_fail(self):
        from repro.core import parse_queries

        db = venues_database(venues=3)
        # Two users pin different venues but insist on coordinating.
        queries = parse_queries(
            """
            a: {R(x, B)} R(x, A) :- Venues(x, 10);
            b: {} R(y, B) :- Venues(y, 11);
            """
        )
        result = scc_coordinate(db, queries)
        # a unifies x with b's y, but venue capacities clash: only b.
        assert result.found
        assert result.chosen.member_set() == {"b"}
