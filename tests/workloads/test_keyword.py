"""Unit tests for the keyword-search coordination workload."""

from repro.core import CoordinationEngine, is_safe
from repro.workloads import (
    keyword_database,
    keyword_events,
    keyword_workload,
    owner_query,
    search_query,
)


class TestQueryShapes:
    def test_search_query_shape(self):
        q = search_query("s", ["entity0001", "entity0002"], ["owner001"])
        assert len(q.body) == 2
        assert len(q.postconditions) == 1
        # Both body atoms share the document variable.
        assert q.body[0].terms[1] == q.body[1].terms[1]

    def test_owner_query_has_no_postconditions(self):
        q = owner_query("owner000")
        assert q.postconditions == ()
        assert q.body[0].relation == "Owners"

    def test_workload_is_safe(self):
        # Owner names recur across sweeps (each sweep's owner retires
        # before the name returns), so deduplicate by name before the
        # whole-set safety check.
        _, queries = keyword_workload(16)
        first = {}
        for query in queries:
            first.setdefault(query.name, query)
        assert is_safe(list(first.values()))


class TestDatabase:
    def test_deterministic_under_seed(self):
        a = keyword_database(seed=7)
        b = keyword_database(seed=7)
        assert sorted(a.rows("Mentions")) == sorted(b.rows("Mentions"))
        assert sorted(a.rows("Owners")) == sorted(b.rows("Owners"))

    def test_entity_is_first_mentions_column(self):
        db = keyword_database(entities=10, docs=40)
        for entity, doc in db.rows("Mentions"):
            assert entity.startswith("entity")
            assert doc.startswith("doc")

    def test_mentions_are_heavy_tailed(self):
        # The most-mentioned (hub) entity should dwarf the median one.
        db = keyword_database(entities=40, docs=400)
        counts = {}
        for entity, _ in db.rows("Mentions"):
            counts[entity] = counts.get(entity, 0) + 1
        ordered = sorted(counts.values())
        assert ordered[-1] >= 4 * ordered[len(ordered) // 2]


class TestEvents:
    def test_deterministic_under_seed(self):
        _, a = keyword_events(24, seed=5)
        _, b = keyword_events(24, seed=5)
        assert [repr(e) for e in a] == [repr(e) for e in b]

    def test_vocabulary_and_terminal_drain(self):
        _, events = keyword_events(24)
        kinds = {e[0] for e in events}
        assert kinds == {"submit", "submit_many", "flush_drain"}
        assert events[-1] == ("flush_drain",)

    def test_owner_sweeps_progressively_drain_stars(self):
        # One head satisfies one postcondition, so each sweep retires
        # one searcher per arriving owner; repeated sweeps make
        # progress while a backlog of partially drained stars remains.
        db, events = keyword_events(40, round_every=8)
        engine = CoordinationEngine(db)
        resolved = []
        # Engine handles carry the query *name* (the service's carry
        # the query object).
        engine.on_resolved(
            lambda h: resolved.append(h.query) if h.satisfied else None
        )
        for event in events:
            if event[0] == "submit":
                engine.submit(event[1])
            elif event[0] == "submit_many":
                engine.submit_many(list(event[1]))
            elif event[0] == "flush_drain":
                while engine.flush().chosen is not None:
                    pass
        seekers = [name for name in resolved if name.startswith("seeker")]
        assert len(seekers) >= 5
        assert 0 < len(engine.pending()) < 40
