"""Unit tests for the marketplace/ride-matching workload."""

from collections import Counter

from repro.core import CoordinationEngine, is_safe
from repro.workloads import (
    ZONES,
    driver_query,
    marketplace_database,
    marketplace_events,
    rider_query,
)


class TestQueryShapes:
    def test_match_is_a_two_query_coordinating_set(self):
        db = marketplace_database()
        db.insert("Riders", ("rider00000", "north"))
        db.insert("Drivers", ("driver00000", "north"))
        engine = CoordinationEngine(db)
        engine.submit(rider_query("rider00000", "driver00000"))
        handle = engine.submit(driver_query("driver00000", "rider00000"))
        assert handle.satisfied
        assert set(handle.satisfied_with) == {"rider00000", "driver00000"}

    def test_zone_mismatch_blocks_the_match(self):
        db = marketplace_database()
        db.insert("Riders", ("rider00000", "north"))
        db.insert("Drivers", ("driver00000", "south"))
        engine = CoordinationEngine(db)
        engine.submit(rider_query("rider00000", "driver00000"))
        handle = engine.submit(driver_query("driver00000", "rider00000"))
        assert not handle.satisfied

    def test_queries_are_safe(self):
        assert is_safe(
            [rider_query("r", "d"), driver_query("d", "r")]
        )


class TestEvents:
    def test_deterministic_under_seed(self):
        _, a = marketplace_events(120, seed=9)
        _, b = marketplace_events(120, seed=9)
        assert [repr(e) for e in a] == [repr(e) for e in b]

    def test_churn_mix_is_heavy(self):
        # The point of the workload: retract and delete traffic at
        # scale, not the occasional targeted-test cleanup.
        _, events = marketplace_events(300)
        kinds = Counter(e[0] for e in events)
        assert kinds["retract"] >= 30
        assert kinds["delete"] >= 60
        assert kinds["flush_drain"] >= 2
        assert events[-1] == ("flush_drain",)

    def test_all_zones_are_catalogued(self):
        _, events = marketplace_events(400)
        zones = {
            row[1]
            for e in events
            if e[0] == "insert"
            for row in [e[2]]
        }
        assert zones <= set(ZONES)

    def test_stream_fully_settles(self):
        # Every dangling request is retracted at the end, so a serial
        # replay leaves nothing pending.
        db, events = marketplace_events(150)
        engine = CoordinationEngine(db)
        for event in events:
            kind = event[0]
            if kind == "submit":
                engine.submit(event[1])
            elif kind == "retract":
                engine.retract(event[1])
            elif kind == "insert":
                engine.db.insert(event[1], event[2])
            elif kind == "delete":
                engine.db.delete(event[1], event[2])
            elif kind == "flush_drain":
                while engine.flush().chosen is not None:
                    pass
        assert engine.pending() == ()
