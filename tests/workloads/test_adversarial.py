"""Unit tests for the adversarial merge-maximizer workload."""

from repro.core import (
    CoordinationGraph,
    ServiceConfig,
    ShardedCoordinationService,
    is_safe,
)
from repro.workloads import (
    leaf_query,
    linker_query,
    merge_tournament_events,
    node_name,
    tournament_database,
)


class TestQueryShapes:
    def test_leaf_is_ghost_blocked_and_edge_free(self):
        graph = CoordinationGraph.build(
            [leaf_query(node_name(0)), leaf_query(node_name(1))]
        )
        assert graph.graph.edge_count() == 0

    def test_linker_bridges_its_children(self):
        queries = [
            leaf_query(node_name(0)),
            leaf_query(node_name(1)),
            linker_query(node_name(2), node_name(0), node_name(1)),
        ]
        graph = CoordinationGraph.build(queries)
        assert graph.graph.successors(node_name(2)) == {
            node_name(0),
            node_name(1),
        }

    def test_queries_are_safe(self):
        assert is_safe(
            [
                leaf_query(node_name(0)),
                linker_query(node_name(2), node_name(0), node_name(1)),
            ]
        )


class TestEvents:
    def test_deterministic_under_seed(self):
        _, a = merge_tournament_events(16, seed=3)
        _, b = merge_tournament_events(16, seed=3)
        assert [repr(e) for e in a] == [repr(e) for e in b]

    def test_tournament_emits_n_minus_one_linkers(self):
        leaves = 16
        _, events = merge_tournament_events(leaves)
        submits = [e for e in events if e[0] == "submit"]
        assert len(submits) == 2 * leaves - 1

    def test_forces_migrations_and_resolves_nothing(self):
        leaves = 24
        db, events = merge_tournament_events(leaves)
        service = ShardedCoordinationService(db, ServiceConfig(shards=4))
        resolved = []
        service.on_resolved(
            lambda h: resolved.append(h.query) if h.satisfied else None
        )
        retractions = 0
        for event in events:
            kind = event[0]
            if kind == "submit":
                service.submit(event[1])
            elif kind == "retract":
                service.retract(event[1])
                retractions += 1
            elif kind == "flush_drain":
                service.flush_drain()
        # The ghost postcondition blocks every coordinating set; the
        # only departures are the final retraction wave.
        assert resolved == []
        assert retractions > 0
        assert service.migrations >= leaves // 2
        assert len(service.pending()) == (2 * leaves - 1) - retractions
        service.close()

    def test_anchor_rows_cover_all_tournament_nodes(self):
        db = tournament_database(8)
        assert len(list(db.rows("Anchors"))) == 15
