"""Property-based tests for the union–find substitution.

Invariants exercised:

* a substitution is an equivalence relation (reflexive, symmetric,
  transitive ``same_class``);
* merging preserves all pre-existing constraints;
* merge order does not affect the induced constraints;
* a consistent set of (variable, value) bindings round-trips through
  ``from_mapping`` / ``as_assignment``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Substitution, Variable

_VARS = [Variable(n) for n in "abcdef"]
_VALUES = st.integers(min_value=0, max_value=2)

_unify_ops = st.lists(
    st.tuples(st.sampled_from(_VARS), st.sampled_from(_VARS)),
    max_size=10,
)
_bind_ops = st.lists(
    st.tuples(st.sampled_from(_VARS), _VALUES),
    max_size=6,
)


def _apply(ops_unify, ops_bind):
    sub = Substitution()
    ok = True
    for a, b in ops_unify:
        ok = sub.unify_terms(a, b) and ok
    for variable, value in ops_bind:
        ok = sub.bind(variable, value) and ok
    return sub, ok


@given(_unify_ops)
def test_same_class_is_equivalence(ops):
    sub, _ = _apply(ops, [])
    for x in _VARS:
        assert sub.same_class(x, x)
        for y in _VARS:
            assert sub.same_class(x, y) == sub.same_class(y, x)
            for z in _VARS:
                if sub.same_class(x, y) and sub.same_class(y, z):
                    assert sub.same_class(x, z)


@given(_unify_ops, _bind_ops)
@settings(max_examples=200)
def test_bound_classes_share_values(ops_unify, ops_bind):
    sub, ok = _apply(ops_unify, ops_bind)
    if not ok:
        return
    for x in _VARS:
        for y in _VARS:
            if sub.same_class(x, y):
                assert sub.value_of(x) == sub.value_of(y)


@given(_unify_ops, _bind_ops)
@settings(max_examples=200)
def test_merge_preserves_constraints(ops_unify, ops_bind):
    sub, ok = _apply(ops_unify, ops_bind)
    if not ok:
        return
    target = Substitution()
    assert target.merge(sub)
    for x in _VARS:
        assert target.value_of(x) == sub.value_of(x)
        for y in _VARS:
            assert target.same_class(x, y) == sub.same_class(x, y)


@given(_unify_ops, _bind_ops, _unify_ops, _bind_ops)
@settings(max_examples=150)
def test_merge_order_irrelevant(u1, b1, u2, b2):
    s1, ok1 = _apply(u1, b1)
    s2, ok2 = _apply(u2, b2)
    if not (ok1 and ok2):
        return
    ab = Substitution()
    ab_ok = ab.merge(s1) and ab.merge(s2)
    ba = Substitution()
    ba_ok = ba.merge(s2) and ba.merge(s1)
    assert ab_ok == ba_ok
    if ab_ok:
        for x in _VARS:
            assert ab.value_of(x) == ba.value_of(x)
            for y in _VARS:
                assert ab.same_class(x, y) == ba.same_class(x, y)


@given(st.dictionaries(st.sampled_from(_VARS), _VALUES, max_size=6))
def test_mapping_round_trip(mapping):
    sub = Substitution.from_mapping(mapping)
    assert sub.as_assignment(mapping.keys()) == mapping


@given(_unify_ops, _bind_ops)
@settings(max_examples=150)
def test_copy_isolation(ops_unify, ops_bind):
    sub, ok = _apply(ops_unify, ops_bind)
    snapshot = {x: sub.value_of(x) for x in _VARS}
    dup = sub.copy()
    # Mutate the copy heavily.
    for x in _VARS:
        dup.unify_terms(x, _VARS[0])
        dup.bind(x, 9)
    assert {x: sub.value_of(x) for x in _VARS} == snapshot
