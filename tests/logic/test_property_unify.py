"""Property-based tests for unification (hypothesis).

The core invariants:

* unification is symmetric;
* a successful unifier makes the two atoms syntactically equal;
* the unifier is *most general*: any common ground instance of the two
  atoms factors through it;
* ground atoms unify iff they are equal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    Atom,
    Constant,
    Variable,
    apply_substitution,
    unifiable,
    unify_atoms,
)

_VALUES = st.integers(min_value=0, max_value=3)
_VAR_NAMES = st.sampled_from(["x", "y", "z", "w"])


def _terms():
    return st.one_of(
        _VAR_NAMES.map(Variable),
        _VALUES.map(Constant),
    )


def _atoms(relation: str = "R", max_arity: int = 4):
    return st.lists(_terms(), min_size=1, max_size=max_arity).map(
        lambda ts: Atom(relation, ts)
    )


@given(_atoms(), _atoms())
def test_unification_symmetric(a, b):
    assert unifiable(a, b) == unifiable(b, a)


@given(_atoms(), _atoms())
def test_unifier_equalises_atoms(a, b):
    sub = unify_atoms(a, b)
    if sub is not None:
        assert apply_substitution(a, sub) == apply_substitution(b, sub)


@given(_atoms())
def test_atom_unifies_with_itself(a):
    assert unifiable(a, a)


@given(_atoms(), st.dictionaries(_VAR_NAMES.map(Variable), _VALUES, max_size=4))
def test_ground_instance_unifies_with_original(atom, mapping):
    # Build a ground instance of the atom by filling all variables.
    full = dict(mapping)
    for variable in atom.variables():
        full.setdefault(variable, 0)
    ground_atom = Atom(
        atom.relation,
        [t if isinstance(t, Constant) else Constant(full[t]) for t in atom.terms],
    )
    # Standardise apart by renaming the original's variables.
    renamed = atom.rename("other")
    assert unifiable(renamed, ground_atom)


@given(_atoms(), _atoms(), st.dictionaries(_VAR_NAMES.map(Variable), _VALUES, max_size=8))
@settings(max_examples=200)
def test_most_general(a, b, mapping):
    """If some ground assignment h makes a and b equal, they unify."""
    variables = set(a.variables()) | set(b.variables())
    full = dict(mapping)
    for variable in variables:
        full.setdefault(variable, 0)

    def ground(atom):
        return tuple(
            t.value if isinstance(t, Constant) else full[t] for t in atom.terms
        )

    if a.relation == b.relation and len(a.terms) == len(b.terms):
        if ground(a) == ground(b):
            assert unifiable(a, b)


@given(st.lists(_VALUES, min_size=1, max_size=4), st.lists(_VALUES, min_size=1, max_size=4))
def test_ground_atoms_unify_iff_equal(xs, ys):
    a, b = Atom("R", xs), Atom("R", ys)
    assert unifiable(a, b) == (a == b)
