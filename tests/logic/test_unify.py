"""Unit tests for atom unification (paper Section 2.3 semantics)."""

from repro.logic import (
    Atom,
    Substitution,
    apply_substitution,
    apply_substitution_all,
    standardize_apart,
    unifiable,
    unify_atom_lists,
    unify_atoms,
    var,
)


class TestUnifyAtoms:
    def test_paper_example_unifiable(self):
        # R(C, x1) and R(C, y1) are unifiable (Section 2.3).
        assert unifiable(Atom("R", ["C", var("x1")]), Atom("R", ["C", var("y1")]))

    def test_paper_example_not_unifiable(self):
        # R(C, x1) and R(G, y1) are not (different constants).
        assert not unifiable(Atom("R", ["C", var("x1")]), Atom("R", ["G", var("y1")]))

    def test_different_relations_never_unify(self):
        assert not unifiable(Atom("R", [var("x")]), Atom("Q", [var("x")]))

    def test_different_arity_never_unify(self):
        assert not unifiable(Atom("R", [var("x")]), Atom("R", [var("x"), 1]))

    def test_variable_binds_constant(self):
        sub = unify_atoms(Atom("R", [var("x")]), Atom("R", [5]))
        assert sub is not None
        assert sub.value_of(var("x")) == 5

    def test_repeated_variable_clash(self):
        # R(x, x) vs R(1, 2): the paper's position-wise test would pass,
        # full unification correctly rejects (DESIGN.md deviation 1).
        assert not unifiable(Atom("R", [var("x"), var("x")]), Atom("R", [1, 2]))

    def test_repeated_variable_consistent(self):
        assert unifiable(Atom("R", [var("x"), var("x")]), Atom("R", [1, 1]))

    def test_ground_atoms_unify_iff_equal(self):
        assert unifiable(Atom("R", [1, 2]), Atom("R", [1, 2]))
        assert not unifiable(Atom("R", [1, 2]), Atom("R", [1, 3]))

    def test_existing_substitution_not_mutated_on_failure(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        result = unify_atoms(Atom("R", [var("x")]), Atom("R", [2]), sub)
        assert result is None
        assert sub.value_of(var("x")) == 1

    def test_extends_existing_substitution(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        result = unify_atoms(Atom("R", [var("x"), var("y")]), Atom("R", [1, 2]), sub)
        assert result is not None
        assert result.value_of(var("y")) == 2

    def test_symmetry(self):
        a = Atom("R", [var("x"), "C"])
        b = Atom("R", [101, var("y")])
        assert unifiable(a, b) == unifiable(b, a)


class TestUnifyAtomLists:
    def test_simultaneous_constraints(self):
        pairs = [
            (Atom("R", [var("x")]), Atom("R", [var("y")])),
            (Atom("S", [var("y")]), Atom("S", [3])),
        ]
        sub = unify_atom_lists(pairs)
        assert sub is not None
        assert sub.value_of(var("x")) == 3

    def test_conflicting_pairs_fail(self):
        pairs = [
            (Atom("R", [var("x")]), Atom("R", [1])),
            (Atom("R", [var("x")]), Atom("R", [2])),
        ]
        assert unify_atom_lists(pairs) is None

    def test_empty_pair_list(self):
        assert unify_atom_lists([]) is not None


class TestStandardizeApart:
    def test_default_namespaces(self):
        lists = standardize_apart([[Atom("R", [var("x")])], [Atom("R", [var("x")])]])
        v0 = lists[0][0].variables()[0]
        v1 = lists[1][0].variables()[0]
        assert v0 != v1
        assert v0.namespace == "q0" and v1.namespace == "q1"

    def test_custom_namespaces(self):
        lists = standardize_apart(
            [[Atom("R", [var("x")])]], namespaces=["mine"]
        )
        assert lists[0][0].variables()[0].namespace == "mine"

    def test_shared_names_no_longer_collide(self):
        a = Atom("R", [var("x"), 1])
        b = Atom("R", [var("x"), 2])
        # Same variable name: direct unification would force 1 = 2.
        assert unify_atom_lists([(a, a), (b, b)]) is not None  # trivially
        [std_a], [std_b] = standardize_apart([[a], [b]])
        sub = unify_atom_lists([(std_a, std_a), (std_b, std_b)])
        assert sub is not None


class TestApplySubstitution:
    def test_rewrites_bound_variables(self):
        sub = Substitution()
        sub.bind(var("x"), 9)
        atom = apply_substitution(Atom("R", [var("x"), var("y")]), sub)
        assert atom.terms[0].value == 9  # type: ignore[union-attr]
        # y unbound: stays a variable
        assert atom.terms[1] in (var("y"), atom.terms[1])

    def test_merged_variables_become_same_root(self):
        sub = Substitution()
        sub.unify_terms(var("x"), var("y"))
        atom = apply_substitution(Atom("R", [var("x"), var("y")]), sub)
        assert atom.terms[0] == atom.terms[1]

    def test_apply_all(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        atoms = apply_substitution_all(
            [Atom("R", [var("x")]), Atom("S", [var("x")])], sub
        )
        assert all(a.is_ground() for a in atoms)

    def test_unification_makes_atoms_equal_after_apply(self):
        # Fundamental MGU property: unify(a, b) => aσ == bσ.
        a = Atom("R", [var("x"), "C", var("z")])
        b = Atom("R", [101, var("y"), var("w")])
        sub = unify_atoms(a, b)
        assert sub is not None
        assert apply_substitution(a, sub) == apply_substitution(b, sub)
