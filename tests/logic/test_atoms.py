"""Unit tests for atoms and grounding."""

import pytest

from repro.errors import LogicError
from repro.logic import Atom, GroundAtom, atoms_variables, var


class TestAtomConstruction:
    def test_terms_coerced_to_constants(self):
        atom = Atom("F", [var("x"), "Zurich", 7])
        assert atom.arity == 3
        assert atom.variables() == (var("x"),)
        assert [c.value for c in atom.constants()] == ["Zurich", 7]

    def test_empty_relation_name_rejected(self):
        with pytest.raises(LogicError):
            Atom("", [1])

    def test_nullary_atom(self):
        atom = Atom("Flag")
        assert atom.arity == 0
        assert atom.is_ground()

    def test_equality_and_hash(self):
        assert Atom("R", [var("x"), 1]) == Atom("R", [var("x"), 1])
        assert Atom("R", [var("x")]) != Atom("S", [var("x")])
        assert len({Atom("R", [1]), Atom("R", [1])}) == 1

    def test_repeated_variables_preserved(self):
        atom = Atom("R", [var("x"), var("x")])
        assert atom.variables() == (var("x"), var("x"))
        assert atom.variable_set() == frozenset({var("x")})


class TestRename:
    def test_rename_moves_all_variables(self):
        atom = Atom("R", [var("x"), "C", var("y")])
        renamed = atom.rename("q1")
        assert renamed.variables() == (var("x", "q1"), var("y", "q1"))
        # constants untouched
        assert renamed.terms[1] == atom.terms[1]

    def test_rename_does_not_mutate(self):
        atom = Atom("R", [var("x")])
        atom.rename("q1")
        assert atom.variables() == (var("x"),)


class TestGrounding:
    def test_ground_full_assignment(self):
        atom = Atom("F", [var("x"), "Zurich"])
        ground = atom.ground({var("x"): 101})
        assert ground == GroundAtom("F", (101, "Zurich"))

    def test_ground_missing_variable_raises(self):
        atom = Atom("F", [var("x")])
        with pytest.raises(LogicError):
            atom.ground({})

    def test_is_ground(self):
        assert Atom("F", [1, 2]).is_ground()
        assert not Atom("F", [var("x"), 2]).is_ground()


class TestAtomsVariables:
    def test_collects_distinct_variables(self):
        atoms = [
            Atom("R", [var("x"), var("y")]),
            Atom("S", [var("y"), var("z")]),
        ]
        assert atoms_variables(atoms) == frozenset({var("x"), var("y"), var("z")})

    def test_empty(self):
        assert atoms_variables([]) == frozenset()
