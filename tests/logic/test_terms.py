"""Unit tests for terms (variables and constants)."""

import pytest

from repro.logic import Constant, Variable, as_term, const, is_constant, is_variable, var


class TestVariable:
    def test_equality_by_name_and_namespace(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert Variable("x", "q1") != Variable("x", "q2")
        assert Variable("x", "q1") == Variable("x", "q1")

    def test_hash_consistency(self):
        assert hash(Variable("x", "q")) == hash(Variable("x", "q"))
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_qualified_moves_namespace(self):
        x = Variable("x")
        qualified = x.qualified("q7")
        assert qualified == Variable("x", "q7")
        assert x.namespace == ""  # original untouched

    def test_immutable(self):
        x = Variable("x")
        with pytest.raises(AttributeError):
            x.name = "y"

    def test_str_includes_namespace(self):
        assert str(Variable("x")) == "x"
        assert str(Variable("x", "qC")) == "qC.x"

    def test_not_equal_to_constant_of_same_text(self):
        assert Variable("x") != Constant("x")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("Paris") == Constant("Paris")

    def test_int_and_string_distinct(self):
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_immutable(self):
        c = Constant(5)
        with pytest.raises(AttributeError):
            c.value = 6


class TestHelpers:
    def test_var_const_shorthands(self):
        assert var("x", "ns") == Variable("x", "ns")
        assert const(3) == Constant(3)

    def test_predicates(self):
        assert is_variable(var("x"))
        assert not is_variable(const(1))
        assert is_constant(const(1))
        assert not is_constant(var("x"))

    def test_as_term_passthrough(self):
        x = var("x")
        assert as_term(x) is x
        c = const(1)
        assert as_term(c) is c

    def test_as_term_wraps_values(self):
        assert as_term("Paris") == Constant("Paris")
        assert as_term(42) == Constant(42)
