"""Unit tests for the union–find substitution."""

import pytest

from repro.logic import Constant, Substitution, var


class TestBinding:
    def test_bind_and_lookup(self):
        sub = Substitution()
        assert sub.bind(var("x"), 5)
        assert sub.value_of(var("x")) == 5
        assert sub.is_bound(var("x"))

    def test_rebind_same_value_ok(self):
        sub = Substitution()
        assert sub.bind(var("x"), 5)
        assert sub.bind(var("x"), 5)

    def test_rebind_conflicting_value_fails(self):
        sub = Substitution()
        assert sub.bind(var("x"), 5)
        assert not sub.bind(var("x"), 6)

    def test_unbound_variable(self):
        sub = Substitution()
        assert sub.value_of(var("x")) is None
        assert not sub.is_bound(var("x"))


class TestUnifyTerms:
    def test_variable_variable_merge(self):
        sub = Substitution()
        assert sub.unify_terms(var("x"), var("y"))
        assert sub.same_class(var("x"), var("y"))
        # Binding one binds the other.
        assert sub.bind(var("x"), 3)
        assert sub.value_of(var("y")) == 3

    def test_transitive_merge(self):
        sub = Substitution()
        assert sub.unify_terms(var("x"), var("y"))
        assert sub.unify_terms(var("y"), var("z"))
        assert sub.bind(var("z"), "v")
        assert sub.value_of(var("x")) == "v"

    def test_merge_classes_with_conflicting_constants_fails(self):
        sub = Substitution()
        assert sub.bind(var("x"), 1)
        assert sub.bind(var("y"), 2)
        assert not sub.unify_terms(var("x"), var("y"))

    def test_merge_classes_same_constant_ok(self):
        sub = Substitution()
        assert sub.bind(var("x"), 1)
        assert sub.bind(var("y"), 1)
        assert sub.unify_terms(var("x"), var("y"))

    def test_constant_constant(self):
        sub = Substitution()
        assert sub.unify_terms(Constant(1), Constant(1))
        assert not sub.unify_terms(Constant(1), Constant(2))

    def test_resolve_constant_passthrough(self):
        sub = Substitution()
        assert sub.resolve(Constant(9)) == Constant(9)

    def test_resolve_bound_variable(self):
        sub = Substitution()
        sub.bind(var("x"), 9)
        assert sub.resolve(var("x")) == Constant(9)


class TestCopyAndMerge:
    def test_copy_is_independent(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        dup = sub.copy()
        dup.bind(var("y"), 2)
        assert sub.value_of(var("y")) is None
        assert dup.value_of(var("x")) == 1

    def test_merge_compatible(self):
        a = Substitution()
        a.unify_terms(var("x"), var("y"))
        b = Substitution()
        b.bind(var("y"), 7)
        assert a.merge(b)
        assert a.value_of(var("x")) == 7

    def test_merge_incompatible(self):
        a = Substitution()
        a.bind(var("x"), 1)
        b = Substitution()
        b.bind(var("x"), 2)
        assert not a.copy().merge(b)

    def test_merge_idempotent_for_shared_constraints(self):
        shared = Substitution()
        shared.unify_terms(var("x"), var("y"))
        shared.bind(var("x"), 4)
        target = Substitution()
        assert target.merge(shared)
        assert target.merge(shared)  # merging twice is harmless
        assert target.value_of(var("y")) == 4


class TestAssignmentExtraction:
    def test_as_assignment_reports_bound_only(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        sub.unify_terms(var("y"), var("z"))
        assignment = sub.as_assignment()
        assert assignment == {var("x"): 1}

    def test_as_assignment_restricted(self):
        sub = Substitution()
        sub.bind(var("x"), 1)
        sub.bind(var("y"), 2)
        assignment = sub.as_assignment([var("x")])
        assert assignment == {var("x"): 1}

    def test_unbound_roots(self):
        sub = Substitution()
        sub.unify_terms(var("x"), var("y"))
        sub.bind(var("z"), 3)
        roots = sub.unbound_roots([var("x"), var("y"), var("z")])
        assert len(roots) == 1  # x and y share one unbound class; z bound

    def test_from_mapping(self):
        sub = Substitution.from_mapping({var("x"): 1, var("y"): 2})
        assert sub.value_of(var("x")) == 1
        assert sub.value_of(var("y")) == 2

    def test_from_mapping_is_consistent(self):
        # Distinct variables can share a value without conflict.
        sub = Substitution.from_mapping({var("x"): 1, var("y"): 1})
        assert sub.value_of(var("y")) == 1
