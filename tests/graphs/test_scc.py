"""SCC tests, including cross-validation against networkx."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    DiGraph,
    condensation,
    is_strongly_connected,
    strongly_connected_components,
)


def _partition(components):
    return {frozenset(c) for c in components}


class TestSmallGraphs:
    def test_single_node(self):
        g = DiGraph()
        g.add_node(1)
        assert _partition(strongly_connected_components(g)) == {frozenset({1})}

    def test_two_cycle(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 1)])
        assert _partition(strongly_connected_components(g)) == {frozenset({1, 2})}

    def test_chain_all_singletons(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3)])
        assert _partition(strongly_connected_components(g)) == {
            frozenset({1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_self_loop_is_singleton_component(self):
        g = DiGraph()
        g.add_edge(1, 1)
        g.add_edge(1, 2)
        assert _partition(strongly_connected_components(g)) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_reverse_topological_order(self):
        # a -> b -> c: c's component must appear before b's before a's.
        g = DiGraph()
        g.add_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(g)
        order = {component[0]: i for i, component in enumerate(components)}
        assert order["c"] < order["b"] < order["a"]

    def test_is_strongly_connected(self):
        ring = DiGraph()
        ring.add_edges([(0, 1), (1, 2), (2, 0)])
        assert is_strongly_connected(ring)
        ring.add_node(99)
        assert not is_strongly_connected(ring)

    def test_empty_graph_not_strongly_connected(self):
        assert not is_strongly_connected(DiGraph())


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_partitions_match(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 40)
        p = rng.choice([0.02, 0.05, 0.1, 0.3])
        ours = DiGraph()
        theirs = nx.DiGraph()
        ours.add_nodes(range(n))
        theirs.add_nodes_from(range(n))
        for i in range(n):
            for j in range(n):
                if i != j and rng.random() < p:
                    ours.add_edge(i, j)
                    theirs.add_edge(i, j)
        mine = _partition(strongly_connected_components(ours))
        reference = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
        assert mine == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_reverse_topological_property(self, seed):
        """Every edge goes from a later component to an earlier one."""
        rng = random.Random(100 + seed)
        g = DiGraph()
        g.add_nodes(range(30))
        for _ in range(60):
            g.add_edge(rng.randrange(30), rng.randrange(30))
        cond = condensation(g)
        for source, target in g.edges():
            cs = cond.component_of(source)
            ct = cond.component_of(target)
            assert cs >= ct  # successors first

    def test_components_partition_nodes(self):
        rng = random.Random(77)
        g = DiGraph()
        g.add_nodes(range(50))
        for _ in range(120):
            g.add_edge(rng.randrange(50), rng.randrange(50))
        components = strongly_connected_components(g)
        seen = [node for component in components for node in component]
        assert sorted(seen) == sorted(g.nodes())
