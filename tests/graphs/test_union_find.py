"""Unit tests for the union-find substrate of the online engine."""

import pytest

from repro.graphs import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind()
        assert uf.add("a")
        assert not uf.add("a")
        assert uf.members("a") == ("a",)
        assert uf.component_size("a") == 1
        assert "a" in uf and "b" not in uf

    def test_union_merges_members(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        assert not uf.connected("a", "c")
        uf.union("b", "c")
        assert uf.connected("a", "d")
        assert sorted(uf.members("a")) == ["a", "b", "c", "d"]
        assert uf.component_size("d") == 4
        assert uf.component_count() == 1

    def test_union_is_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        root = uf.find("a")
        assert uf.union("a", "b") == root
        assert uf.component_size("a") == 2

    def test_implicit_add_on_union(self):
        uf = UnionFind()
        uf.union("x", "y")
        assert "x" in uf and "y" in uf
        assert len(uf) == 2

    def test_connected_unknown_elements(self):
        uf = UnionFind()
        uf.add("a")
        assert not uf.connected("a", "ghost")
        assert not uf.connected("ghost", "ghost")


class TestDiscard:
    def test_discard_component_removes_all_members(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.add("z")
        dropped = uf.discard_component("b")
        assert sorted(dropped) == ["a", "b", "c"]
        assert len(uf) == 1
        assert "a" not in uf
        assert uf.members("z") == ("z",)

    def test_discard_unknown_is_noop(self):
        uf = UnionFind()
        assert uf.discard_component("ghost") == ()

    def test_readd_after_discard(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.discard_component("a")
        assert uf.add("a")
        assert uf.members("a") == ("a",)


class TestScale:
    def test_chain_of_unions(self):
        uf = UnionFind()
        n = 2000
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.component_size(0) == n
        assert uf.find(0) == uf.find(n - 1)
        assert uf.component_count() == 1
        assert sorted(uf.members(n // 2)) == list(range(n))

    def test_components_iteration(self):
        uf = UnionFind()
        for i in range(10):
            uf.add(i)
        for i in range(0, 10, 2):
            uf.union(i, (i + 2) % 10)
        comps = sorted(sorted(c) for c in uf.components())
        assert comps == [[0, 2, 4, 6, 8], [1], [3], [5], [7], [9]]
