"""Unit tests for the directed graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graphs import DiGraph


@pytest.fixture
def diamond() -> DiGraph:
    g = DiGraph()
    g.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    return g


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node(1)
        g.add_edge(1, 2)
        g.add_node(1)  # must not clear edges
        assert g.has_edge(1, 2)

    def test_parallel_edges_collapse(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.edge_count() == 1

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.successors(1) == {1}


class TestRemoval:
    def test_remove_node_removes_incident_edges(self, diamond):
        diamond.remove_node("b")
        assert not diamond.has_node("b")
        assert diamond.successors("a") == {"c"}
        assert diamond.predecessors("d") == {"c"}

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            DiGraph().remove_node("x")

    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "b")
        assert not diamond.has_edge("a", "b")
        assert diamond.has_node("b")

    def test_remove_missing_edge_is_noop(self, diamond):
        diamond.remove_edge("a", "zzz")


class TestViews:
    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2
        assert diamond.in_degree("a") == 0

    def test_counts(self, diamond):
        assert diamond.node_count() == 4
        assert diamond.edge_count() == 4
        assert len(diamond) == 4

    def test_edges_iteration(self, diamond):
        assert sorted(diamond.edges()) == [
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
        ]

    def test_successors_returns_copy(self, diamond):
        successors = diamond.successors("a")
        successors.add("zzz")
        assert "zzz" not in diamond.successors("a")

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.successors("zzz")


class TestCopySubgraph:
    def test_copy_independent(self, diamond):
        dup = diamond.copy()
        dup.remove_node("a")
        assert diamond.has_node("a")

    def test_subgraph_induced(self, diamond):
        sub = diamond.subgraph(["a", "b", "d"])
        assert sorted(sub.edges()) == [("a", "b"), ("b", "d")]
        assert not sub.has_node("c")

    def test_subgraph_ignores_unknown(self, diamond):
        sub = diamond.subgraph(["a", "nope"])
        assert sub.node_count() == 1
