"""Unit tests for traversal helpers (reachability, topo order, paths)."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    bfs_layers,
    count_simple_paths,
    has_unique_simple_paths,
    is_acyclic,
    reachable_from,
    topological_order,
)


def _dag():
    g = DiGraph()
    g.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")])
    return g


class TestReachability:
    def test_reachable_from(self):
        g = _dag()
        assert reachable_from(g, "b") == {"b", "d", "e"}
        assert reachable_from(g, "e") == {"e"}

    def test_missing_node(self):
        with pytest.raises(GraphError):
            reachable_from(DiGraph(), "x")


class TestTopologicalOrder:
    def test_valid_order(self):
        g = _dag()
        order = topological_order(g)
        position = {node: i for i, node in enumerate(order)}
        for source, target in g.edges():
            assert position[source] < position[target]

    def test_cycle_raises(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 1)])
        with pytest.raises(GraphError):
            topological_order(g)

    def test_is_acyclic(self):
        assert is_acyclic(_dag())
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3), (3, 1)])
        assert not is_acyclic(g)


class TestSimplePaths:
    def test_diamond_has_two_paths(self):
        g = _dag()
        assert count_simple_paths(g, "a", "d") == 2
        assert count_simple_paths(g, "a", "e", limit=5) == 2

    def test_single_path(self):
        g = _dag()
        assert count_simple_paths(g, "b", "e") == 1

    def test_no_path(self):
        g = _dag()
        assert count_simple_paths(g, "e", "a") == 0

    def test_source_equals_target(self):
        g = _dag()
        assert count_simple_paths(g, "a", "a") == 1

    def test_limit_short_circuits(self):
        g = _dag()
        assert count_simple_paths(g, "a", "d", limit=1) == 1

    def test_cycle_does_not_loop_forever(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 1), (2, 3)])
        assert count_simple_paths(g, 1, 3) == 1

    def test_unique_simple_paths_check(self):
        chain = DiGraph()
        chain.add_edges([(1, 2), (2, 3)])
        assert has_unique_simple_paths(chain)
        assert not has_unique_simple_paths(_dag())  # diamond

    def test_two_cycle_unique_paths(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 1)])
        assert has_unique_simple_paths(g)


class TestBfsLayers:
    def test_layers(self):
        g = _dag()
        layers = bfs_layers(g, "a")
        assert layers[0] == ["a"]
        assert set(layers[1]) == {"b", "c"}
        assert set(layers[2]) == {"d"}
        assert set(layers[3]) == {"e"}

    def test_missing_start(self):
        with pytest.raises(GraphError):
            bfs_layers(DiGraph(), "x")
