"""Unit tests for the components graph (condensation)."""

import random

from repro.graphs import DiGraph, condensation, is_acyclic


def _example():
    # Two 2-cycles with a bridge, plus a sink.
    g = DiGraph()
    g.add_edges([(1, 2), (2, 1), (3, 4), (4, 3), (2, 3), (4, 5)])
    return g


class TestCondensation:
    def test_components_found(self):
        cond = condensation(_example())
        members = {frozenset(c) for c in cond.components}
        assert members == {frozenset({1, 2}), frozenset({3, 4}), frozenset({5})}

    def test_dag_edges(self):
        cond = condensation(_example())
        c12 = cond.component_of(1)
        c34 = cond.component_of(3)
        c5 = cond.component_of(5)
        assert cond.dag.has_edge(c12, c34)
        assert cond.dag.has_edge(c34, c5)
        assert not cond.dag.has_edge(c34, c12)

    def test_dag_is_acyclic(self):
        rng = random.Random(3)
        g = DiGraph()
        g.add_nodes(range(40))
        for _ in range(120):
            g.add_edge(rng.randrange(40), rng.randrange(40))
        cond = condensation(g)
        assert is_acyclic(cond.dag)

    def test_reachable_nodes_is_R_of_q(self):
        cond = condensation(_example())
        # R(q) for q in {1,2}: everything downstream.
        r12 = set(cond.reachable_nodes(cond.component_of(1)))
        assert r12 == {1, 2, 3, 4, 5}
        r34 = set(cond.reachable_nodes(cond.component_of(3)))
        assert r34 == {3, 4, 5}
        r5 = set(cond.reachable_nodes(cond.component_of(5)))
        assert r5 == {5}

    def test_reverse_topological_iteration(self):
        cond = condensation(_example())
        order = list(cond.reverse_topological_order())
        # Sink component (5) must come before {3,4}, which precedes {1,2}.
        assert order.index(cond.component_of(5)) < order.index(cond.component_of(3))
        assert order.index(cond.component_of(3)) < order.index(cond.component_of(1))

    def test_member_lookup(self):
        cond = condensation(_example())
        c = cond.component_of(4)
        assert set(cond.members(c)) == {3, 4}
        assert cond.component_count == 3

    def test_no_self_edges_in_dag(self):
        cond = condensation(_example())
        for source, target in cond.dag.edges():
            assert source != target
