"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.LogicError,
    errors.UnificationError,
    errors.DatabaseError,
    errors.SchemaError,
    errors.UnknownRelationError,
    errors.ArityError,
    errors.GraphError,
    errors.CoordinationError,
    errors.MalformedQueryError,
    errors.ParseError,
    errors.PreconditionError,
    errors.HardnessError,
    errors.FormulaError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise error_type("boom")


def test_layered_hierarchy():
    assert issubclass(errors.SchemaError, errors.DatabaseError)
    assert issubclass(errors.ParseError, errors.CoordinationError)
    assert issubclass(errors.FormulaError, errors.HardnessError)
    assert issubclass(errors.UnificationError, errors.LogicError)


def test_catching_the_base_class_is_sufficient():
    # A library consumer can guard any call with one except clause.
    from repro.core import parse_query

    try:
        parse_query("{{{nonsense")
    except errors.ReproError as caught:
        assert isinstance(caught, errors.ParseError)
    else:  # pragma: no cover
        raise AssertionError("expected a parse error")
