#!/usr/bin/env python
"""The hardness reductions of Section 3, demonstrated live.

Encodes a small 3SAT formula as entangled queries over the two-value
database ``D = {0, 1}`` (Theorem 1), decides it by coordinating-set
search, and decodes the truth assignment back.  Also shows the
Theorem 2 phenomenon: maximum coordinating sets reach ``k + m`` exactly
when the formula is satisfiable, while the polynomial SCC algorithm
(whose guarantee is per-reachability-set only) cannot see that
optimum.  Run::

    python examples/sat_hardness.py
"""

from repro.core import find_coordinating_set, find_maximum_coordinating_set, scc_coordinate
from repro.hardness import dpll, three_sat
from repro.hardness import theorem1, theorem2


def main() -> None:
    formula = three_sat([(1, 2, 3), (-1, 2, 3), (1, -2, -3)])
    print(f"formula: {formula}")
    print(f"DPLL says satisfiable: {dpll.is_satisfiable(formula)}")

    # ---- Theorem 1: Entangled(Q_all) over D = {0, 1} -------------------
    instance = theorem1.encode(formula)
    print(f"\nTheorem 1 encoding: {len(instance.queries)} entangled queries")
    print("database:", dict(instance.db.sizes()))
    for query in instance.queries[:4]:
        print(f"  {query.name}: {query}")
    print("  ...")

    found = find_coordinating_set(instance.db, instance.queries)
    assert found is not None
    model = theorem1.decode(instance, found)
    print(f"coordinating set found ({found.size} queries)")
    print(f"decoded assignment: {model}")
    print(f"assignment satisfies the formula: {formula.evaluate(model)}")

    unsat = three_sat(
        [
            (s1, s2, s3)
            for s1 in (1, -1)
            for s2 in (2, -2)
            for s3 in (3, -3)
        ]
    )
    unsat_instance = theorem1.encode(unsat)
    missing = find_coordinating_set(unsat_instance.db, unsat_instance.queries)
    print(f"\nunsatisfiable formula -> coordinating set exists: {missing is not None}")

    # ---- Theorem 2: EntangledMax(Q_safe) --------------------------------
    instance2 = theorem2.encode(formula)
    print(
        f"\nTheorem 2 encoding: {len(instance2.queries)} SAFE queries; "
        f"target size k + m = {instance2.target_size}"
    )
    maximum = find_maximum_coordinating_set(instance2.db, instance2.queries)
    print(f"maximum coordinating set size (exponential search): {maximum.size}")
    model2 = theorem2.decode(instance2, maximum)
    print(f"decoded assignment satisfies formula: {formula.evaluate(model2)}")

    scc = scc_coordinate(instance2.db, instance2.queries)
    print(
        f"SCC algorithm's best candidate: {scc.chosen.size} queries "
        f"(its guarantee is over R(q) reachability sets only — "
        f"maximality is NP-hard even for safe sets)"
    )


if __name__ == "__main__":
    main()
