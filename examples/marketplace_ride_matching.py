#!/usr/bin/env python
"""Two-sided ride matching as entangled queries (marketplace scenario).

A rider's trip request posts an answer naming a driver; the driver's
acceptance posts an answer naming the rider.  Both bind the same zone
variable through their body tables, so a pair coordinates only if
rider and driver are in the same zone — matching falls out of
coordination, no matcher service required.  Churn (cancellations,
drivers going offline) is part of the workload, not an error path.
Run::

    python examples/marketplace_ride_matching.py
"""

from repro.core import QueryState, ServiceConfig, ShardedCoordinationService
from repro.scenarios import drive, get_scenario
from repro.workloads import driver_query, marketplace_database, rider_query


def hand_driven() -> None:
    """A few explicit requests: a match, a zone mismatch, a cancel."""
    db = marketplace_database()
    db.insert("Riders", ("ada", "airport"))
    db.insert("Riders", ("bo", "north"))
    db.insert("Drivers", ("dax", "airport"))

    service = ShardedCoordinationService(db, ServiceConfig(shards=2))

    # Ada requests dax; dax accepts ada; both sit in the airport zone.
    ada = service.submit(rider_query("ada", "dax"))
    done = service.submit(driver_query("dax", "ada"))
    print(f"ada + dax: matched {set(done.satisfied)}")
    assert ada.state is QueryState.SATISFIED

    # Bo also wants dax — but bo is in the north zone, dax was at the
    # airport, and the shared zone variable refuses the pairing.
    bo = service.submit(rider_query("bo", "dax"))
    service.submit(driver_query("dax", "bo"))
    service.flush_drain()
    print(f"bo + dax: {bo.state.name.lower()} (zone mismatch keeps them apart)")
    assert bo.state is QueryState.PENDING

    # Bo gives up and cancels — the lifecycle path churn exercises.
    service.retract("bo")
    print(f"bo cancels: {service.status('bo').name.lower()}")
    service.close()


def scenario_run() -> None:
    """The catalog scenario: the same shapes at churn-heavy scale."""
    scenario = get_scenario("marketplace")
    db, events = scenario.build(120, seed=2012)
    service = ShardedCoordinationService(db, ServiceConfig(shards=4))
    run = drive(service, events)
    service.close()
    print(
        f"\nscenario 'marketplace' (120 requests): {run.operations} events, "
        f"{run.resolved} matched, {run.rejected} rejected, "
        f"{run.pending} pending after the final drain"
    )
    assert run.pending == 0  # churn or matching settles every request


if __name__ == "__main__":
    hand_driven()
    scenario_run()
