#!/usr/bin/env python
"""The movies example of Section 5: unsafe queries, consistent algorithm.

Each Coldplay member wants to see a movie *with at least one friend* —
a coordination request whose partner is not fixed in advance, so the
query set is unsafe and none of the safe-set algorithms apply.  Because
everyone coordinates on the same attribute (the cinema), the Consistent
Coordination Algorithm solves it in polynomial time.  Run::

    python examples/movie_night.py
"""

from repro.core import ConsistentCoordinator, Trace, render_trace
from repro.core.consistent_lowering import lower_all
from repro.core import safety_report
from repro.core.coordination_graph import CoordinationGraph
from repro.workloads import movies_database, movies_queries, movies_setup


def main() -> None:
    db = movies_database()
    setup = movies_setup()
    queries = movies_queries()

    print("requests:")
    for query in queries:
        print(f"  {query}")

    # Show why the safe-set machinery cannot help: lowered to entangled
    # syntax, friend slots make the set unsafe.
    lowered = lower_all(queries, setup, db)
    report = safety_report(CoordinationGraph.build(lowered))
    print(f"\nlowered to entangled queries, the set is safe: {report.is_safe}")
    print(f"unsafe queries: {', '.join(report.unsafe_queries())}")

    # Run the Consistent Coordination Algorithm with tracing on, so the
    # library narrates the cleaning phases the way Section 5 does.
    coordinator = ConsistentCoordinator(db, setup)
    trace = Trace()
    result = coordinator.coordinate(queries, trace=trace)

    print("\noption lists V(q) (the paper's table):")
    for user, values in result.option_lists.items():
        cinemas = ", ".join(sorted(v[0] for v in values))
        print(f"  {user:6s}: {{{cinemas}}}")

    print("\nsurviving subgraphs G_v after cleaning:")
    for candidate in result.candidates:
        users = ", ".join(candidate.users)
        print(f"  {candidate.value[0]:8s}: {{{users}}}")
    rejected = {("Cinemark",)} - {c.value for c in result.candidates}
    for value in rejected:
        print(f"  {value[0]:8s}: cleaned to ∅ (no friends available there)")

    print("\nmechanical narration of the run (Trace):")
    print(render_trace(trace, title="consistent coordination trace"))

    assert result.found
    outcome = result.chosen
    print(f"\nchosen cinema: {outcome.value[0]}")
    for user, key in sorted(outcome.selections.items()):
        row = next(r for r in db.rows("M") if r[0] == key)
        buddies = ", ".join(outcome.friend_witnesses.get(user, ())) or "Will (named)"
        print(f"  {user:6s}: sees {row[2]:10s} at {row[1]} (with {buddies})")


if __name__ == "__main__":
    main()
