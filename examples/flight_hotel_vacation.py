#!/usr/bin/env python
"""The flight–hotel vacation scenario of Section 2.2 / Figures 1–2.

Chris, Guy, Jonny and Will plan a vacation with interlocking flight and
hotel requirements.  Jonny's wish (Athens, but on Chris and Guy's
flight to Paris) is unsatisfiable, and Will depends on Jonny; the SCC
Coordination Algorithm works that out from the components graph and
books Chris and Guy together.  Run::

    python examples/flight_hotel_vacation.py
"""

from repro.core import CoordinationGraph, is_unique, safety_report, scc_coordinate
from repro.graphs import condensation
from repro.workloads import vacation_database, vacation_queries


def main() -> None:
    db = vacation_database()
    queries = vacation_queries()

    print("queries (Figure 1):")
    for query in queries:
        print(f"  {query.name}: {query}")

    # The coordination graph of Figure 2 and its SCCs.
    graph = CoordinationGraph.build(queries)
    print("\ncoordination graph (Figure 2):")
    for name in sorted(graph.names()):
        successors = ", ".join(sorted(graph.graph.successors(name))) or "-"
        print(f"  {name} -> {successors}")
    print(f"safe: {safety_report(graph).is_safe}, unique: {is_unique(graph)}")

    cond = condensation(graph.graph)
    print("\nstrongly connected components (processed in this order):")
    for component in cond.reverse_topological_order():
        members = ", ".join(sorted(cond.members(component)))
        print(f"  component {component}: {{{members}}}")

    # Run the Section 4 algorithm.
    result = scc_coordinate(db, queries)
    assert result.found
    chosen = result.chosen
    print(f"\ncoordinating set: {chosen}")

    flight = chosen.value_of("qC", "x1")
    hotel = chosen.value_of("qC", "x2")
    print(f"Chris and Guy fly on flight {flight} and stay at hotel {hotel}")
    destination = next(row[1] for row in db.rows("F") if row[0] == flight)
    print(f"destination: {destination}")

    print(
        "\nJonny (Athens on the same flight) and Will (depends on Jonny) "
        "cannot be satisfied:"
    )
    for candidate in result.candidates:
        print(f"  candidate: {candidate} (size {candidate.size})")
    print(
        f"cost: {result.stats.db_queries} database queries for "
        f"{result.stats.scc_count} components"
    )


if __name__ == "__main__":
    main()
