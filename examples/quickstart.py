#!/usr/bin/env python
"""Quickstart: the paper's Section 2.1 example, end to end.

Gwyneth wants to fly to Zurich *with Chris*; Chris just wants a Zurich
flight.  Individually their queries are ordinary database lookups; the
entanglement (Gwyneth's postcondition) forces them onto the same
flight.  Run::

    python examples/quickstart.py
"""

from repro import parse_queries, scc_coordinate, verify_coordinating_set
from repro.db import DatabaseBuilder


def main() -> None:
    # 1. A database with a few flights.
    db = (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows(
            "Flights",
            [
                (101, "Zurich"),
                (102, "Zurich"),
                (200, "Paris"),
            ],
        )
        .build()
    )

    # 2. Two entangled queries in the paper's textual syntax.  Lowercase
    #    identifiers are variables; capitalised ones are constants.
    queries = parse_queries(
        """
        gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
        chris:   {} R(Chris, y) :- Flights(y, 'Zurich');
        """
    )
    for query in queries:
        print(f"  {query.name}: {query}")

    # 3. Coordinate.  The set is safe but NOT unique (Chris doesn't need
    #    Gwyneth), so the prior state of the art could not evaluate it;
    #    the paper's SCC Coordination Algorithm can.
    result = scc_coordinate(db, queries)
    assert result.found, "a Zurich flight exists, so coordination must succeed"
    chosen = result.chosen

    print(f"\ncoordinating set: {chosen}")
    gwyneth_flight = chosen.value_of("gwyneth", "x")
    chris_flight = chosen.value_of("chris", "y")
    print(f"Gwyneth books flight {gwyneth_flight}")
    print(f"Chris   books flight {chris_flight}")
    assert gwyneth_flight == chris_flight, "choose-1 semantics: one flight"

    # 4. Every answer is mechanically checkable against Definition 1.
    report = verify_coordinating_set(db, queries, chosen.members, chosen.assignment)
    print(f"Definition 1 check: {'OK' if report.ok else report.reason}")

    # 5. Cost accounting, in the machine-independent units of the paper.
    print(
        f"cost: {result.stats.db_queries} database queries, "
        f"{result.stats.scc_count} SCCs, "
        f"{result.stats.unifications} unifications"
    )


if __name__ == "__main__":
    main()
