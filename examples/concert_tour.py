#!/usr/bin/env python
"""Example 2 of the paper: Coldplay fans coordinating on a concert.

A group of fans wants to attend a Coldplay concert with at least one
friend.  They live in different cities (so they take different
flights), but they coordinate on the concert's *city and date* — the
coordination attributes.  Some fans pin a city, some pin their home
airport (a private, non-coordinating constraint).  Run::

    python examples/concert_tour.py
"""

from repro.core import (
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    consistent_coordinate,
)
from repro.db import DatabaseBuilder


def build_database():
    """Flights to tour stops + the fans' friendship graph.

    A flight row is (flightId, city, date, origin): a fan can attend a
    concert in ``city`` on ``date`` if a flight from their home airport
    arrives there (the paper's "a day after the flight arrives" detail
    is folded into the date for brevity).
    """
    builder = DatabaseBuilder()
    builder.table("Concerts", ["concertId", "city", "date", "origin"], key="concertId")
    builder.rows(
        "Concerts",
        [
            # Paris show, reachable from three airports.
            (1, "Paris", "jun-01", "JFK"),
            (2, "Paris", "jun-01", "LHR"),
            (3, "Paris", "jun-01", "TXL"),
            # Istanbul show, reachable from two.
            (4, "Istanbul", "jun-05", "JFK"),
            (5, "Istanbul", "jun-05", "TXL"),
            # Tokyo show, reachable only from LAX.
            (6, "Tokyo", "jun-10", "LAX"),
        ],
    )
    builder.table("Friends", ["user", "friend"])
    builder.rows(
        "Friends",
        [
            ("ana", "ben"),
            ("ben", "ana"),
            ("ben", "chen"),
            ("chen", "ben"),
            ("chen", "dana"),
            ("dana", "chen"),
            ("dana", "ana"),
            ("elif", "ana"),  # elif's only friend is ana
        ],
    )
    return builder.build()


def main() -> None:
    db = build_database()
    setup = ConsistentSetup(
        table="Concerts",
        coordination_attributes=("city", "date"),
        friend_relations=("Friends",),
    )

    queries = [
        # ana flies out of JFK, any show will do — with a friend.
        ConsistentQuery("ana", {"origin": "JFK"}, [FriendSlot()]),
        # ben is in London and wants Paris specifically.
        ConsistentQuery("ben", {"origin": "LHR", "city": "Paris"}, [FriendSlot()]),
        # chen is in Berlin, flexible.
        ConsistentQuery("chen", {"origin": "TXL"}, [FriendSlot()]),
        # dana insists on Tokyo — her only flight is from LAX.
        ConsistentQuery("dana", {"city": "Tokyo"}, [FriendSlot()]),
        # elif only knows ana and can leave from anywhere.
        ConsistentQuery("elif", {}, [FriendSlot()]),
    ]

    print("fan requests:")
    for query in queries:
        print(f"  {query}")

    result = consistent_coordinate(db, setup, queries)

    print("\ncandidate (city, date) values and who survives cleaning:")
    for candidate in result.candidates:
        users = ", ".join(candidate.users)
        print(f"  {candidate.value}: {{{users}}}")

    assert result.found
    outcome = result.chosen
    city, date = outcome.value
    print(f"\nchosen concert: {city} on {date}")
    for user, key in sorted(outcome.selections.items()):
        row = next(r for r in db.rows("Concerts") if r[0] == key)
        friends = ", ".join(outcome.friend_witnesses.get(user, ()))
        print(f"  {user:5s}: flight #{key} from {row[3]:3s} (friend(s): {friends})")

    print(
        "\ndana (Tokyo-only) cannot drag any friend to Tokyo, so she is "
        "cleaned out of every candidate — coordination degrades "
        "gracefully instead of failing globally."
    )


if __name__ == "__main__":
    main()
