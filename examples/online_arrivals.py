#!/usr/bin/env python
"""Online coordination in the style of the Youtopia system (Section 6.1).

Queries arrive one at a time; after each arrival the engine evaluates
the connected component the query joins, and deletes satisfied queries.
This example replays a small "study group" scenario: students enrol in
a seminar wanting to attend with specific classmates.  Run::

    python examples/online_arrivals.py
"""

from repro.core import CoordinationEngine, parse_query
from repro.db import DatabaseBuilder


def main() -> None:
    db = (
        DatabaseBuilder()
        .table("Seminars", ["seminarId", "topic"], key="seminarId")
        .rows(
            "Seminars",
            [
                (501, "databases"),
                (502, "databases"),
                (601, "crypto"),
            ],
        )
        .build()
    )
    engine = CoordinationEngine(db)

    arrivals = [
        # ada waits for bob; bob waits for cy; cy closes the chain.
        "ada: {R(x, Bob)} R(x, Ada) :- Seminars(x, 'databases')",
        "bob: {R(y, Cy)} R(y, Bob) :- Seminars(y, 'databases')",
        "cy:  {} R(z, Cy) :- Seminars(z, 'databases')",
        # dan is independent and is answered immediately.
        "dan: {} R(w, Dan) :- Seminars(w, 'crypto')",
        # eve names a classmate who already left: she keeps waiting.
        "eve: {R(v, Cy)} R(v, Eve) :- Seminars(v, 'databases')",
    ]

    for source in arrivals:
        query = parse_query(source)
        outcome = engine.submit(query)
        status = (
            f"coordinated {set(outcome.satisfied)}"
            if outcome.coordinated
            else "waiting"
        )
        print(f"arrival {query.name:4s} -> {status:32s} pending={set(engine.pending()) or '{}'}")

    print(
        "\nNote the shared-variable entanglement: ada, bob and cy all "
        "received the SAME seminar id, because each postcondition reuses "
        "the head variable."
    )
    print(
        "eve arrived after cy's query was satisfied and deleted — in the "
        "online model, order matters (Section 7 lists incremental "
        "re-coordination as future work)."
    )

    # The lifecycle API: eve gives up waiting and withdraws her query.
    handle = engine.handle("eve")
    handle.on_resolved(lambda h: print(f"\neve resolved: {h.state}"))
    engine.retract("eve")
    print(f"eve's status: {engine.status('eve')}, pending={set(engine.pending()) or '{}'}")


if __name__ == "__main__":
    main()
